//! Hierarchical lookup hash structures `HLH_1` and `HLH_k` (Figures 4 and 5
//! of the paper), laid out for the hot path of the miner.
//!
//! * [`Hlh1`] plays the role of the single-event hash table `EH` plus the
//!   event-granule hash table `GH`: for each candidate event it stores the
//!   support set and, aligned with it, the event instances occurring in each
//!   supporting granule. Instances live in one flat array per event with a
//!   granule-offset array on top (a CSR layout), not in one vector per
//!   granule.
//! * [`HlhK`] combines the k-event hash table `EH_k`, the pattern hash table
//!   `PH_k` and the pattern-granule hash table `GH_k`. Groups and patterns
//!   are *interned*: each lives exactly once in an arena and is addressed by
//!   a compact [`GroupId`] / [`PatternId`] everywhere else. The hash indexes
//!   are keyed by packed `u64` buffers ([`encode_pattern_key`]), so an
//!   occurrence insert hashes a few machine words instead of a whole
//!   [`TemporalPattern`], and never clones the pattern. Instance bindings
//!   are stored in one flat [`EventInstance`] pool per level (every binding
//!   is `k` consecutive pool slots) with per-pattern offset arrays
//!   pattern → granule → binding-id slice on top — appending an occurrence
//!   is a bump-append, and reading the bindings of a granule is two offset
//!   lookups once the granule's position in the support set is known.
//!
//! The arena + index layout is what [`HlhK::merge_shards`] exploits to make
//! parallel mining byte-identical to sequential mining: per-shard ids are
//! remapped by a constant offset in shard order.
//!
//! Two reuse structures ride on `HLH_2` so that level k ≥ 3 never re-derives
//! what level 2 already computed:
//!
//! * [`RelationAdjacency`] — the level-2 relation graph as bitset rows over
//!   interned `F_1` label ids. The extension set of a (k−1)-group is the
//!   bitwise AND of its members' neighbor rows, and `has_relation_between`
//!   becomes a single bit test instead of a hash probe per member.
//! * [`VerdictTable`] — a CSR side table holding the classified relation
//!   verdict of every level-2 instance cross-product cell, addressed by
//!   (label pair, granule, instance-index pair). The k-event miner looks
//!   verdicts up instead of re-running the closed-form classifier on the
//!   same interval pairs; the classifier remains the fallback for cells the
//!   table does not cover.
//!
//! Levels also come in a *terminal* flavour ([`HlhK::new_terminal`]): the
//! last level of a run is never extended, so its instance bindings are never
//! read — a terminal level keeps supports and patterns but skips the binding
//! pool entirely, which is where the bulk of a level's footprint lives.
//!
//! # Validation & hot-path discipline
//!
//! The accessors above lean on layout invariants — monotone in-bounds CSR
//! offsets, index maps consistent with their arenas, exact pool slot
//! arithmetic — that [`Hlh1::validate`], [`HlhK::validate`] and
//! [`VerdictTable::validate`] check exhaustively (see the
//! [`invariants`](crate::invariants) module; the miner runs them at every
//! level boundary under `debug_assertions` or the `strict-invariants`
//! feature). The per-occurrence entry points (`instances_at_index`,
//! `binding_ids_at`, `push_verdict`, `add_pattern_occurrence`, …) are
//! marked `// lint: hot-path`: the project lint pass rejects any allocating
//! construct added to them, keeping occurrence inserts bump-appends and
//! granule reads two offset lookups.

use crate::config::ResolvedConfig;
use crate::fxhash::FxHashMap;
use crate::pattern::{encode_label, encode_pattern_key, TemporalPattern};
use crate::support::SupportSet;
use stpm_timeseries::{EventInstance, EventLabel, GranulePos, SequenceDatabase};

/// Compact identifier of a candidate group inside one [`HlhK`] (its index in
/// the group arena, in insertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// Compact identifier of a candidate pattern inside one [`HlhK`] (its index
/// in the pattern arena, in insertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternId(pub u32);

/// Per-event entry of `HLH_1`: support set plus the instances per supporting
/// granule in a CSR layout — `instances_at_index(i)` is the slice of
/// instances occurring in granule `support[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventEntry {
    /// Sorted granule positions where the event occurs.
    pub support: SupportSet,
    /// All instances of the event, granule-major.
    instances: Vec<EventInstance>,
    /// `starts[i]` is the index in `instances` of the first instance of
    /// granule `support[i]`; the slice ends at `starts[i + 1]` (or the pool
    /// end for the last granule).
    starts: Vec<u32>,
}

impl EventEntry {
    /// Appends one instance, opening a new granule run when `granule` is new.
    /// Instances must arrive in non-decreasing granule order (one database
    /// scan provides exactly that).
    fn push(&mut self, granule: GranulePos, instance: EventInstance) {
        match self.support.last() {
            Some(&last) if last == granule => {}
            other => {
                debug_assert!(other.is_none_or(|&g| g < granule), "granules must ascend");
                self.support.push(granule);
                self.starts
                    .push(u32::try_from(self.instances.len()).expect("instance count fits u32"));
            }
        }
        self.instances.push(instance);
    }

    /// Instances of the event in granule `granule`, or an empty slice.
    #[must_use]
    pub fn instances_at(&self, granule: GranulePos) -> &[EventInstance] {
        match self.support.binary_search(&granule) {
            Ok(idx) => self.instances_at_index(idx),
            Err(_) => &[],
        }
    }

    /// Instances of the event in granule `support[idx]` — the two-offset
    /// lookup used when the caller already knows the granule's position in
    /// the support set (e.g. from an indexed intersection).
    #[must_use]
    // lint: hot-path
    pub fn instances_at_index(&self, idx: usize) -> &[EventInstance] {
        let start = self.starts[idx] as usize;
        let end = self
            .starts
            .get(idx + 1)
            .map_or(self.instances.len(), |&s| s as usize);
        &self.instances[start..end]
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.support.len() * std::mem::size_of::<GranulePos>()
            + self.instances.len() * std::mem::size_of::<EventInstance>()
            + self.starts.len() * std::mem::size_of::<u32>()
    }
}

/// The hierarchical lookup hash structure for single events (`HLH_1`).
#[derive(Debug, Clone, Default)]
pub struct Hlh1 {
    events: FxHashMap<EventLabel, EventEntry>,
    /// The candidate labels, sorted canonically — built once so `labels()`
    /// does not re-collect and re-sort the key set on every call.
    labels: Vec<EventLabel>,
}

impl Hlh1 {
    /// Scans `D_SEQ` once and builds `HLH_1`. When `candidates_only` is set
    /// (the Apriori-like pruning of E-STPM), only events whose `maxSeason`
    /// reaches `minSeason` are kept; otherwise every event with non-empty
    /// support is retained.
    #[must_use]
    pub fn build(dseq: &SequenceDatabase, config: &ResolvedConfig, candidates_only: bool) -> Self {
        let mut events: FxHashMap<EventLabel, EventEntry> = FxHashMap::default();
        for sequence in dseq.sequences() {
            let granule = sequence.granule();
            for instance in sequence.instances() {
                events
                    .entry(instance.label)
                    .or_default()
                    .push(granule, *instance);
            }
        }
        if candidates_only {
            events.retain(|_, entry| config.is_candidate(entry.support.len()));
        }
        // lint:allow(determinism): collected labels are sorted on the next line
        let mut labels: Vec<EventLabel> = events.keys().copied().collect();
        labels.sort_unstable();
        Self { events, labels }
    }

    /// The candidate event labels, sorted canonically (cached at build time).
    #[must_use]
    pub fn labels(&self) -> &[EventLabel] {
        &self.labels
    }

    /// Entry of one event label.
    #[must_use]
    pub fn entry(&self, label: EventLabel) -> Option<&EventEntry> {
        self.events.get(&label)
    }

    /// Support set of one event (empty when the event is not a candidate).
    #[must_use]
    pub fn support(&self, label: EventLabel) -> &[GranulePos] {
        self.events.get(&label).map_or(&[], |e| &e.support)
    }

    /// Instances of one event in one granule.
    #[must_use]
    pub fn instances_at(&self, label: EventLabel, granule: GranulePos) -> &[EventInstance] {
        self.events
            .get(&label)
            .map_or(&[] as &[EventInstance], |e| e.instances_at(granule))
    }

    /// Number of events held in the structure.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Approximate heap footprint in bytes (reported by the memory
    /// experiments of Figures 9/10/19/20).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.labels.len() * std::mem::size_of::<EventLabel>()
            + self
                .events
                .values() // lint:allow(determinism): commutative sum, order-insensitive
                .map(|entry| {
                    std::mem::size_of::<EventLabel>()
                        + std::mem::size_of::<EventEntry>()
                        + entry.footprint_bytes()
                })
                .sum::<usize>()
    }
}

/// Per-pattern entry of `HLH_k`: the pattern (stored exactly once — the
/// arena is the owner, the index maps only hold packed keys), its support
/// set, and the CSR offsets of its bindings in the level's instance pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternEntry {
    /// The candidate pattern.
    pub pattern: TemporalPattern,
    /// Sorted granule positions where the pattern occurs.
    pub support: SupportSet,
    /// `granule_starts[i]` is the index in `bindings` of the first binding
    /// of granule `support[i]`.
    granule_starts: Vec<u32>,
    /// Binding ids (into the level's pool, `k` slots each), granule-major.
    bindings: Vec<u32>,
}

impl PatternEntry {
    /// Total number of occurrences (bindings) of the pattern.
    #[must_use]
    pub fn num_bindings(&self) -> usize {
        self.bindings.len()
    }

    /// The binding ids of granule `support[idx]` — a two-offset lookup for
    /// callers that located the granule via an indexed intersection. Resolve
    /// each id to its instance slice with [`HlhK::binding`]. Empty on a
    /// terminal level, which records no bindings.
    #[must_use]
    // lint: hot-path
    pub fn binding_ids_at_index(&self, idx: usize) -> &[u32] {
        if self.granule_starts.is_empty() {
            return &[];
        }
        let start = self.granule_starts[idx] as usize;
        let end = self
            .granule_starts
            .get(idx + 1)
            .map_or(self.bindings.len(), |&s| s as usize);
        &self.bindings[start..end]
    }

    /// The binding ids of one granule (empty when the granule does not
    /// support the pattern).
    #[must_use]
    // lint: hot-path
    pub fn binding_ids_at(&self, granule: GranulePos) -> &[u32] {
        match self.support.binary_search(&granule) {
            Ok(idx) => self.binding_ids_at_index(idx),
            Err(_) => &[],
        }
    }

    /// Approximate heap footprint in bytes (pool slots are accounted by the
    /// level, not per pattern).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.support.len() * std::mem::size_of::<GranulePos>()
            + self.granule_starts.len() * std::mem::size_of::<u32>()
            + self.bindings.len() * std::mem::size_of::<u32>()
            + std::mem::size_of_val(self.pattern.events())
            + self.pattern.triples().len() * 4
    }
}

/// Per-group entry of `HLH_k`: the sorted event group (owned by the arena),
/// its support set, and the ids of its candidate patterns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GroupEntry {
    /// The group's events, sorted canonically.
    pub events: Vec<EventLabel>,
    /// The support set of the event group.
    pub support: SupportSet,
    /// Ids of the group's candidate patterns in the pattern arena.
    pub patterns: Vec<PatternId>,
}

/// The level-2 relation graph as a bitset adjacency matrix over interned
/// `F_1` label ids (the indices of the sorted candidate-label list).
///
/// Row `i` has bit `j` set iff some candidate 2-pattern relates labels `i`
/// and `j`. Built once after level 2, it turns the per-member
/// `has_relation_between` hash probes of the transitivity pruning (Lemma 4)
/// into one bitwise AND over the members' rows: the surviving bits *are* the
/// extension candidates, so the per-group `F_1` scan disappears with them.
#[derive(Debug, Clone, Default)]
pub struct RelationAdjacency {
    /// The interned labels, sorted canonically — bit/row `i` is `labels[i]`.
    labels: Vec<EventLabel>,
    /// `u64` words per row.
    words_per_row: usize,
    /// Row-major bit matrix, `labels.len() * words_per_row` words.
    bits: Vec<u64>,
}

impl RelationAdjacency {
    /// Builds the adjacency matrix of one `HLH_2` over the sorted candidate
    /// labels `labels` (every event of every level-2 group must appear in
    /// `labels`). Groups whose pattern list is empty contribute no edge —
    /// matching [`HlhK::has_relation_between`].
    #[must_use]
    pub fn build(hlh2: &HlhK, labels: &[EventLabel]) -> Self {
        debug_assert_eq!(hlh2.k, 2, "adjacency is derived from HLH_2");
        debug_assert!(labels.windows(2).all(|w| w[0] < w[1]), "labels are sorted");
        let n = labels.len();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        for group in &hlh2.groups {
            if group.patterns.is_empty() {
                continue;
            }
            let i = labels
                .binary_search(&group.events[0])
                .expect("group events come from the candidate labels");
            let j = labels
                .binary_search(&group.events[1])
                .expect("group events come from the candidate labels");
            bits[i * words_per_row + j / 64] |= 1 << (j % 64);
            bits[j * words_per_row + i / 64] |= 1 << (i % 64);
        }
        Self {
            labels: labels.to_vec(),
            words_per_row,
            bits,
        }
    }

    /// Number of interned labels (rows).
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the matrix holds no labels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The interned id of a label, if it is a candidate.
    #[must_use]
    pub fn index_of(&self, label: EventLabel) -> Option<usize> {
        self.labels.binary_search(&label).ok()
    }

    /// The label of one interned id.
    #[must_use]
    pub fn label(&self, id: usize) -> EventLabel {
        self.labels[id]
    }

    /// The neighbor row of label id `id`.
    #[must_use]
    // lint: hot-path
    pub fn row(&self, id: usize) -> &[u64] {
        &self.bits[id * self.words_per_row..][..self.words_per_row]
    }

    /// Whether a candidate 2-pattern relates the labels with ids `i` and `j`
    /// — the transitivity lookup as a single bit test.
    #[must_use]
    // lint: hot-path
    pub fn has_relation_between(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.words_per_row + j / 64] & (1 << (j % 64)) != 0
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.labels.len() * std::mem::size_of::<EventLabel>()
            + self.bits.len() * std::mem::size_of::<u64>()
    }
}

/// CSR side table of the level-2 relation verdicts: for every processed
/// candidate pair, for every shared granule, the packed
/// [`encode_verdict`](crate::relation::encode_verdict) byte of every instance
/// cross-product cell, row-major (`first-event instance × second-event
/// instance` in the granule's `HLH_1` slice order).
///
/// Level k ≥ 3 classifies the *same* interval pairs level 2 already decided
/// — the member of a (k−1)-binding against the extension event's instances.
/// The table makes that a byte load: pair → (hash probe once per group ×
/// extension), granule → (binary search once per granule), cell → offset
/// arithmetic.
#[derive(Debug, Clone, Default)]
pub struct VerdictTable {
    /// Canonically ordered packed label pair → pair slot.
    pair_index: FxHashMap<[u64; 2], u32>,
    /// `pair_starts[p]` is the first granule slot of pair `p`; the range
    /// ends at `pair_starts[p + 1]` (or `granules.len()` for the last pair).
    pair_starts: Vec<u32>,
    /// Granule positions, concatenated per pair (sorted within each pair).
    granules: Vec<GranulePos>,
    /// `block_starts[g]` is the first byte of granule slot `g`'s verdict
    /// block; blocks are contiguous, so the block ends at the next start.
    block_starts: Vec<u32>,
    /// The verdict bytes of every block, concatenated.
    verdicts: Vec<u8>,
}

impl VerdictTable {
    fn pair_key(a: EventLabel, b: EventLabel) -> [u64; 2] {
        if a <= b {
            [encode_label(a), encode_label(b)]
        } else {
            [encode_label(b), encode_label(a)]
        }
    }

    /// Opens recording for a pair (its granules and blocks must then arrive
    /// in ascending granule order). Each pair must be recorded exactly once.
    pub fn begin_pair(&mut self, a: EventLabel, b: EventLabel) {
        let slot = u32::try_from(self.pair_starts.len()).expect("pair count fits u32");
        let previous = self.pair_index.insert(Self::pair_key(a, b), slot);
        debug_assert!(previous.is_none(), "pair recorded twice");
        self.pair_starts
            .push(u32::try_from(self.granules.len()).expect("granule slots fit u32"));
    }

    /// Opens the verdict block of the current pair's next granule.
    pub fn begin_granule(&mut self, granule: GranulePos) {
        self.granules.push(granule);
        self.block_starts
            .push(u32::try_from(self.verdicts.len()).expect("verdict bytes fit u32"));
    }

    /// Appends one verdict byte to the current block (row-major cell order).
    // lint: hot-path
    pub fn push_verdict(&mut self, verdict: u8) {
        self.verdicts.push(verdict);
    }

    /// The recorded verdicts of one label pair (order-insensitive), if the
    /// pair was processed at level 2.
    #[must_use]
    // lint: hot-path
    pub fn pair(&self, a: EventLabel, b: EventLabel) -> Option<PairVerdicts<'_>> {
        let &slot = self.pair_index.get(&Self::pair_key(a, b))?;
        let start = self.pair_starts[slot as usize] as usize;
        let end = self
            .pair_starts
            .get(slot as usize + 1)
            .map_or(self.granules.len(), |&s| s as usize);
        Some(PairVerdicts {
            table: self,
            start,
            end,
        })
    }

    /// Number of recorded pairs.
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.pair_starts.len()
    }

    /// Whether the table holds no pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pair_starts.is_empty()
    }

    /// Concatenates another table's rows after this one's (shards partition
    /// the pair space, so keys never collide).
    fn merge_from(&mut self, shard: VerdictTable) {
        let pair_offset = u32::try_from(self.pair_starts.len()).expect("pair count fits u32");
        let granule_offset = u32::try_from(self.granules.len()).expect("granule slots fit u32");
        let verdict_offset = u32::try_from(self.verdicts.len()).expect("verdict bytes fit u32");
        for (key, slot) in shard.pair_index {
            let previous = self.pair_index.insert(key, slot + pair_offset);
            assert!(previous.is_none(), "verdict pair produced by two shards");
        }
        self.pair_starts
            .extend(shard.pair_starts.iter().map(|&s| s + granule_offset));
        self.granules.extend_from_slice(&shard.granules);
        self.block_starts
            .extend(shard.block_starts.iter().map(|&s| s + verdict_offset));
        self.verdicts.extend_from_slice(&shard.verdicts);
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.pair_index.len() * std::mem::size_of::<[u64; 2]>()
            + self.pair_starts.len() * std::mem::size_of::<u32>()
            + self.granules.len() * std::mem::size_of::<GranulePos>()
            + self.block_starts.len() * std::mem::size_of::<u32>()
            + self.verdicts.len()
    }
}

/// The recorded verdict blocks of one label pair — a window into the
/// [`VerdictTable`].
#[derive(Debug, Clone, Copy)]
pub struct PairVerdicts<'a> {
    table: &'a VerdictTable,
    /// First granule slot of the pair.
    start: usize,
    /// One past the pair's last granule slot.
    end: usize,
}

impl<'a> PairVerdicts<'a> {
    /// The verdict block of one granule: the row-major bytes of the
    /// instance cross-product, or `None` when the granule was not processed
    /// for this pair. Index cell `(i, j)` as `block[i * cols + j]`, where
    /// `cols` is the second (larger-label) event's instance count in the
    /// granule.
    #[must_use]
    // lint: hot-path
    pub fn block(&self, granule: GranulePos) -> Option<&'a [u8]> {
        let granules = &self.table.granules[self.start..self.end];
        let idx = self.start + granules.binary_search(&granule).ok()?;
        let start = self.table.block_starts[idx] as usize;
        let end = self
            .table
            .block_starts
            .get(idx + 1)
            .map_or(self.table.verdicts.len(), |&s| s as usize);
        Some(&self.table.verdicts[start..end])
    }

    /// Whether the pair relates anywhere in `granule`'s block: `Some(true)`
    /// when at least one cell holds a relation verdict, `Some(false)` when
    /// the whole cross-product classified to no relation (so no candidate
    /// binding through this pair can extend at the granule), `None` when
    /// the granule was not processed for this pair. The scan runs through
    /// the dispatched [`crate::simd`] byte-scan kernel (32 cells per
    /// compare on AVX2).
    #[must_use]
    // lint: hot-path
    pub fn block_has_relation(&self, granule: GranulePos) -> Option<bool> {
        self.block(granule)
            .map(|block| crate::simd::kernels().verdict_any(block))
    }
}

/// The hierarchical lookup hash structure for k-event groups and patterns
/// (`HLH_k`, k ≥ 2).
#[derive(Debug, Clone, Default)]
pub struct HlhK {
    k: usize,
    /// Group arena, in insertion order.
    groups: Vec<GroupEntry>,
    /// Packed event labels → group id.
    group_index: FxHashMap<Box<[u64]>, GroupId>,
    /// Pattern arena, in insertion order.
    patterns: Vec<PatternEntry>,
    /// Packed pattern key → pattern id.
    pattern_index: FxHashMap<Box<[u64]>, PatternId>,
    /// Flat instance pool: binding `b` occupies slots `b*k .. (b+1)*k`.
    /// Empty for terminal levels, which record no bindings at all.
    pool: Vec<EventInstance>,
    /// Whether occurrences append their binding to the pool. `false` for the
    /// terminal level of a run: no later level reads its bindings.
    record_bindings: bool,
    /// Level-2 relation verdicts (empty unless this is a non-terminal
    /// `HLH_2` mined with verdict recording).
    verdicts: VerdictTable,
}

impl HlhK {
    /// Creates an empty structure for k-event groups.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            k,
            groups: Vec::new(),
            group_index: FxHashMap::default(),
            patterns: Vec::new(),
            pattern_index: FxHashMap::default(),
            pool: Vec::new(),
            record_bindings: true,
            verdicts: VerdictTable::default(),
        }
    }

    /// Creates an empty *terminal* level: occurrences are counted into the
    /// supports as usual, but no binding is appended to the instance pool.
    /// The miner uses this for `k == maxPatternLen` — nothing ever reads the
    /// last level's bindings, and the pool is where most of a level's
    /// footprint lives.
    #[must_use]
    pub fn new_terminal(k: usize) -> Self {
        Self {
            record_bindings: false,
            ..Self::new(k)
        }
    }

    /// The `k` of this level.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether occurrences record their instance bindings (`false` for
    /// terminal levels).
    #[must_use]
    pub fn records_bindings(&self) -> bool {
        self.record_bindings
    }

    /// The level-2 relation verdict side table (empty for k ≥ 3 levels and
    /// for runs that never reach level 3).
    #[must_use]
    pub fn verdict_table(&self) -> &VerdictTable {
        &self.verdicts
    }

    /// Mutable access to the verdict side table, for the level-2 miner to
    /// record into.
    #[must_use]
    pub fn verdict_table_mut(&mut self) -> &mut VerdictTable {
        &mut self.verdicts
    }

    fn encode_group(members: &[EventLabel]) -> Box<[u64]> {
        members.iter().copied().map(encode_label).collect()
    }

    /// Registers a candidate k-event group with its support set and returns
    /// its id (the existing id when the group is already registered).
    pub fn insert_group(&mut self, events: Vec<EventLabel>, support: SupportSet) -> GroupId {
        let key = Self::encode_group(&events);
        if let Some(&id) = self.group_index.get(&key) {
            return id;
        }
        let id = GroupId(u32::try_from(self.groups.len()).expect("group count fits u32"));
        self.group_index.insert(key, id);
        self.groups.push(GroupEntry {
            events,
            support,
            patterns: Vec::new(),
        });
        id
    }

    /// The candidate k-event groups, sorted canonically by their events.
    #[must_use]
    pub fn groups(&self) -> Vec<&GroupEntry> {
        let mut groups: Vec<&GroupEntry> = self.groups.iter().collect();
        groups.sort_by(|a, b| a.events.cmp(&b.events));
        groups
    }

    /// Entry of one group, looked up by its event list.
    #[must_use]
    pub fn group(&self, events: &[EventLabel]) -> Option<&GroupEntry> {
        self.group_index
            .get(&Self::encode_group(events))
            .map(|&id| &self.groups[id.0 as usize])
    }

    /// Entry of one pattern id.
    #[must_use]
    pub fn pattern(&self, id: PatternId) -> &PatternEntry {
        &self.patterns[id.0 as usize]
    }

    /// The instance slice of one binding id.
    #[must_use]
    // lint: hot-path
    pub fn binding(&self, id: u32) -> &[EventInstance] {
        &self.pool[id as usize * self.k..][..self.k]
    }

    /// The bindings of pattern `id` in `granule`, as instance slices.
    pub fn bindings_at(
        &self,
        id: PatternId,
        granule: GranulePos,
    ) -> impl Iterator<Item = &[EventInstance]> + '_ {
        self.pattern(id)
            .binding_ids_at(granule)
            .iter()
            .map(move |&b| self.binding(b))
    }

    /// Adds one occurrence of the candidate pattern identified by `key` (its
    /// packed interning key) to `group`. The binding is `prefix` followed by
    /// `last` — the pool append copies the instances, so callers extend a
    /// (k-1)-binding slice without materialising an owned vector.
    /// `make_pattern` is invoked only when the key is new; the constructed
    /// pattern is stored once in the arena and never cloned.
    ///
    /// Occurrences of one pattern must arrive in non-decreasing granule
    /// order (level mining scans granules in order per candidate).
    // lint: hot-path
    pub fn add_pattern_occurrence<F>(
        &mut self,
        group: GroupId,
        key: &[u64],
        make_pattern: F,
        granule: GranulePos,
        prefix: &[EventInstance],
        last: EventInstance,
    ) -> PatternId
    where
        F: FnOnce() -> TemporalPattern,
    {
        debug_assert_eq!(prefix.len() + 1, self.k, "binding length must be k");
        let id = match self.pattern_index.get(key) {
            Some(&id) => id,
            None => {
                let id = PatternId(u32::try_from(self.patterns.len()).expect("patterns fit u32"));
                let pattern = make_pattern();
                debug_assert_eq!(
                    encode_pattern_key(&pattern),
                    key,
                    "interning key must encode the constructed pattern"
                );
                self.patterns.push(PatternEntry {
                    pattern,
                    // lint:allow(hot-path-alloc): first-occurrence arm
                    support: Vec::new(),
                    // lint:allow(hot-path-alloc): first-occurrence arm
                    granule_starts: Vec::new(),
                    // lint:allow(hot-path-alloc): first-occurrence arm
                    bindings: Vec::new(),
                });
                self.pattern_index.insert(key.into(), id);
                self.groups[group.0 as usize].patterns.push(id);
                id
            }
        };
        let entry = &mut self.patterns[id.0 as usize];
        if self.record_bindings {
            let binding_id =
                u32::try_from(self.pool.len() / self.k).expect("binding count fits u32");
            self.pool.extend_from_slice(prefix);
            self.pool.push(last);
            match entry.support.last() {
                Some(&g) if g == granule => {}
                other => {
                    debug_assert!(other.is_none_or(|&g| g < granule), "granules must ascend");
                    entry.support.push(granule);
                    entry
                        .granule_starts
                        .push(u32::try_from(entry.bindings.len()).expect("bindings fit u32"));
                }
            }
            entry.bindings.push(binding_id);
        } else {
            // Terminal level: only the support set is maintained.
            match entry.support.last() {
                Some(&g) if g == granule => {}
                other => {
                    debug_assert!(other.is_none_or(|&g| g < granule), "granules must ascend");
                    entry.support.push(granule);
                }
            }
        }
        id
    }

    /// Drops the candidate patterns that fail the `maxSeason` gate (applied
    /// after all occurrences of a group have been collected), together with
    /// any group whose pattern list becomes empty — such a group would never
    /// be extended again, so keeping it would only inflate `num_groups()` and
    /// `footprint_bytes()`. The instance pool is compacted alongside, which
    /// also makes every surviving pattern's bindings contiguous. Returns the
    /// number of patterns removed.
    pub fn retain_candidates(&mut self, config: &ResolvedConfig) -> usize {
        let keep: Vec<bool> = self
            .patterns
            .iter()
            .map(|entry| config.is_candidate(entry.support.len()))
            .collect();
        let removed = keep.iter().filter(|&&k| !k).count();
        if removed == 0 {
            return 0;
        }
        // Compact the pattern arena and the pool, remapping binding ids.
        let mut remap: Vec<Option<PatternId>> = vec![None; self.patterns.len()];
        let mut new_patterns = Vec::with_capacity(self.patterns.len() - removed);
        let mut new_pool = Vec::new();
        for (idx, mut entry) in self.patterns.drain(..).enumerate() {
            if !keep[idx] {
                continue;
            }
            remap[idx] = Some(PatternId(
                u32::try_from(new_patterns.len()).expect("patterns fit u32"),
            ));
            for binding in &mut entry.bindings {
                let old = *binding as usize * self.k;
                *binding = u32::try_from(new_pool.len() / self.k).expect("bindings fit u32");
                new_pool.extend_from_slice(&self.pool[old..old + self.k]);
            }
            new_patterns.push(entry);
        }
        self.patterns = new_patterns;
        self.pool = new_pool;
        self.pattern_index = self
            .patterns
            .iter()
            .enumerate()
            .map(|(i, e)| {
                (
                    encode_pattern_key(&e.pattern).into_boxed_slice(),
                    PatternId(u32::try_from(i).expect("patterns fit u32")),
                )
            })
            .collect();
        // Compact the group arena, dropping groups that lost every pattern.
        let mut new_groups = Vec::with_capacity(self.groups.len());
        for mut group in self.groups.drain(..) {
            group.patterns = group
                .patterns
                .iter()
                .filter_map(|id| remap[id.0 as usize])
                .collect();
            if !group.patterns.is_empty() {
                new_groups.push(group);
            }
        }
        self.groups = new_groups;
        self.group_index = self
            .groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                (
                    Self::encode_group(&g.events),
                    GroupId(u32::try_from(i).expect("groups fit u32")),
                )
            })
            .collect();
        removed
    }

    /// Merges per-shard levels produced by parallel mining into one `HLH_k`,
    /// preserving shard order. Sharding partitions the candidate space so
    /// that every group (and therefore every pattern) is produced by exactly
    /// one shard; concatenating the arenas and the pools in shard order —
    /// remapping each shard's ids by a constant offset — makes the merged
    /// level identical to the one sequential mining builds.
    ///
    /// # Panics
    /// Panics when two shards produced the same group or pattern — that
    /// would mean the shards did not partition the candidate space.
    #[must_use]
    pub fn merge_shards(k: usize, shards: Vec<HlhK>) -> Self {
        let mut merged = Self::new(k);
        if let Some(first) = shards.first() {
            merged.record_bindings = first.record_bindings;
        }
        for shard in shards {
            assert_eq!(shard.k, k, "cannot merge levels of different k");
            assert_eq!(
                shard.record_bindings, merged.record_bindings,
                "cannot merge terminal and non-terminal shards"
            );
            merged.verdicts.merge_from(shard.verdicts);
            let pattern_offset = u32::try_from(merged.patterns.len()).expect("patterns fit u32");
            let group_offset = u32::try_from(merged.groups.len()).expect("groups fit u32");
            let binding_offset =
                u32::try_from(merged.pool.len() / k.max(1)).expect("bindings fit u32");
            for (key, id) in shard.pattern_index {
                let previous = merged
                    .pattern_index
                    .insert(key, PatternId(id.0 + pattern_offset));
                assert!(previous.is_none(), "pattern produced by two shards");
            }
            for (key, id) in shard.group_index {
                let previous = merged.group_index.insert(key, GroupId(id.0 + group_offset));
                assert!(previous.is_none(), "group produced by two shards");
            }
            for mut entry in shard.patterns {
                for binding in &mut entry.bindings {
                    *binding += binding_offset;
                }
                merged.patterns.push(entry);
            }
            for mut group in shard.groups {
                for id in &mut group.patterns {
                    id.0 += pattern_offset;
                }
                merged.groups.push(group);
            }
            merged.pool.extend_from_slice(&shard.pool);
        }
        merged
    }

    /// The candidate pattern entries of this level, in insertion order.
    #[must_use]
    pub fn patterns(&self) -> &[PatternEntry] {
        &self.patterns
    }

    /// The pattern entries belonging to one group, looked up by its events.
    #[must_use]
    pub fn patterns_of_group(&self, events: &[EventLabel]) -> Vec<&PatternEntry> {
        self.group(events)
            .map(|g| g.patterns.iter().map(|&id| self.pattern(id)).collect())
            .unwrap_or_default()
    }

    /// Whether any candidate pattern of this level relates the two events
    /// (in either orientation). This is the lookup behind the transitivity
    /// pruning (Lemma 4) and the iterative verification of Section IV-D.
    /// The pair key is packed on the stack — no allocation per probe.
    #[must_use]
    pub fn has_relation_between(&self, a: EventLabel, b: EventLabel) -> bool {
        let key: [u64; 2] = if a <= b {
            [encode_label(a), encode_label(b)]
        } else {
            [encode_label(b), encode_label(a)]
        };
        self.group_index
            .get(&key[..])
            .is_some_and(|&id| !self.groups[id.0 as usize].patterns.is_empty())
    }

    /// Number of candidate groups.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of candidate patterns.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the level holds no candidate patterns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The distinct event labels participating in any candidate pattern of
    /// this level (used to build `FilteredF_1`).
    #[must_use]
    pub fn participating_events(&self) -> Vec<EventLabel> {
        let mut labels: Vec<EventLabel> = self
            .patterns
            .iter()
            .flat_map(|p| p.pattern.events().iter().copied())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Approximate heap footprint in bytes. Depends only on element counts
    /// (never on capacities or map layout), so the sequential and the merged
    /// parallel structures report identical footprints.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        let group_bytes: usize = self
            .groups
            .iter()
            .map(|entry| {
                entry.events.len() * std::mem::size_of::<EventLabel>()
                    + entry.support.len() * std::mem::size_of::<GranulePos>()
                    + entry.patterns.len() * std::mem::size_of::<PatternId>()
            })
            .sum();
        let pattern_bytes: usize = self
            .patterns
            .iter()
            .map(PatternEntry::footprint_bytes)
            .sum();
        let index_bytes: usize = self
            .group_index
            .keys() // lint:allow(determinism): commutative sum, order-insensitive
            .chain(self.pattern_index.keys()) // lint:allow(determinism): same commutative sum
            .map(|key| key.len() * std::mem::size_of::<u64>())
            .sum();
        group_bytes
            + pattern_bytes
            + index_bytes
            + self.pool.len() * std::mem::size_of::<EventInstance>()
            + self.verdicts.footprint_bytes()
    }
}

// ---------------------------------------------------------------------------
// Structural validation (see the `invariants` module). The walks below check
// every layout invariant the accessors rely on without bounds checks of
// their own design — CSR offsets monotone and in bounds, index maps
// consistent with their arenas, pool slot arithmetic exact. Validation
// outcome is order-insensitive, so iterating the hash indexes is sound.
// ---------------------------------------------------------------------------

use crate::invariants::{invariant, InvariantViolation};

fn ascends(values: &[GranulePos]) -> bool {
    values.windows(2).all(|w| w[0] < w[1])
}

impl Hlh1 {
    /// Validates the structural invariants of the table: the cached label
    /// list is sorted and mirrors the key set, every support set ascends
    /// strictly, and every CSR instance-offset array is monotone, in bounds
    /// and aligned with its support set.
    ///
    /// # Errors
    /// The first [`InvariantViolation`] found, if any.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        const S: &str = "Hlh1";
        invariant!(
            S,
            self.labels.windows(2).all(|w| w[0] < w[1]),
            "cached label list is not strictly sorted"
        );
        invariant!(
            S,
            self.labels.len() == self.events.len(),
            "label cache has {} labels but the table has {} entries",
            self.labels.len(),
            self.events.len()
        );
        for &label in &self.labels {
            let Some(entry) = self.events.get(&label) else {
                return Err(InvariantViolation::new(
                    S,
                    format!("cached label {label:?} has no table entry"),
                ));
            };
            invariant!(
                S,
                ascends(&entry.support),
                "support of {label:?} is not strictly ascending"
            );
            invariant!(
                S,
                entry.starts.len() == entry.support.len(),
                "entry of {label:?} has {} granule offsets for {} supporting granules",
                entry.starts.len(),
                entry.support.len()
            );
            invariant!(
                S,
                entry.starts.first().is_none_or(|&s| s == 0),
                "instance offsets of {label:?} do not start at 0"
            );
            invariant!(
                S,
                entry.starts.windows(2).all(|w| w[0] < w[1]),
                "instance offsets of {label:?} are not strictly ascending (every granule run is non-empty)"
            );
            invariant!(
                S,
                entry
                    .starts
                    .last()
                    .is_none_or(|&s| (s as usize) < entry.instances.len()),
                "instance offsets of {label:?} point past the instance pool"
            );
            invariant!(
                S,
                entry.support.is_empty() == entry.instances.is_empty(),
                "entry of {label:?} has granules without instances (or vice versa)"
            );
        }
        Ok(())
    }
}

impl VerdictTable {
    /// Validates the block shape of the table: the pair index is a
    /// permutation of the pair slots, the pair→granule and granule→byte
    /// offset arrays are monotone and in bounds, and granules ascend
    /// strictly within each pair.
    ///
    /// # Errors
    /// The first [`InvariantViolation`] found, if any.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        const S: &str = "VerdictTable";
        invariant!(
            S,
            self.pair_index.len() == self.pair_starts.len(),
            "pair index has {} keys for {} pair slots",
            self.pair_index.len(),
            self.pair_starts.len()
        );
        let mut seen = vec![false; self.pair_starts.len()];
        // lint:allow(determinism): order-insensitive validation conjunction
        for &slot in self.pair_index.values() {
            invariant!(
                S,
                (slot as usize) < self.pair_starts.len(),
                "pair slot {slot} out of range"
            );
            invariant!(
                S,
                !std::mem::replace(&mut seen[slot as usize], true),
                "pair slot {slot} indexed twice"
            );
        }
        invariant!(
            S,
            self.pair_starts.windows(2).all(|w| w[0] <= w[1]),
            "pair→granule offsets are not monotone"
        );
        invariant!(
            S,
            self.pair_starts
                .last()
                .is_none_or(|&s| (s as usize) <= self.granules.len()),
            "pair→granule offsets point past the granule slots"
        );
        invariant!(
            S,
            self.block_starts.len() == self.granules.len(),
            "{} verdict blocks for {} granule slots",
            self.block_starts.len(),
            self.granules.len()
        );
        invariant!(
            S,
            self.block_starts.windows(2).all(|w| w[0] <= w[1]),
            "granule→byte offsets are not monotone"
        );
        invariant!(
            S,
            self.block_starts
                .last()
                .is_none_or(|&s| (s as usize) <= self.verdicts.len()),
            "granule→byte offsets point past the verdict bytes"
        );
        for (slot, &start) in self.pair_starts.iter().enumerate() {
            let end = self
                .pair_starts
                .get(slot + 1)
                .map_or(self.granules.len(), |&s| s as usize);
            invariant!(
                S,
                ascends(&self.granules[start as usize..end]),
                "granules of pair slot {slot} are not strictly ascending"
            );
        }
        Ok(())
    }
}

impl HlhK {
    /// Validates the structural invariants of the level: arena/index
    /// consistency for groups and patterns (each index is a permutation of
    /// its arena, and every key re-encodes its entry), strictly ascending
    /// support sets, monotone in-bounds binding CSR offsets, exact pool slot
    /// arithmetic, and the [`VerdictTable`] block shape.
    ///
    /// # Errors
    /// The first [`InvariantViolation`] found, if any.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        const S: &str = "HlhK";
        invariant!(S, self.k >= 2, "level arity {} below 2", self.k);
        self.validate_groups()?;
        self.validate_patterns()?;
        invariant!(
            S,
            self.pool.len().is_multiple_of(self.k),
            "pool length {} is not a multiple of k={}",
            self.pool.len(),
            self.k
        );
        invariant!(
            S,
            self.record_bindings || self.pool.is_empty(),
            "terminal level carries {} pool slots",
            self.pool.len()
        );
        self.verdicts.validate()
    }

    fn validate_groups(&self) -> Result<(), InvariantViolation> {
        const S: &str = "HlhK";
        invariant!(
            S,
            self.group_index.len() == self.groups.len(),
            "group index has {} keys for {} arena entries",
            self.group_index.len(),
            self.groups.len()
        );
        let mut seen = vec![false; self.groups.len()];
        // lint:allow(determinism): order-insensitive validation conjunction
        for (key, &id) in &self.group_index {
            let Some(group) = self.groups.get(id.0 as usize) else {
                return Err(InvariantViolation::new(
                    S,
                    format!("group id {} out of range", id.0),
                ));
            };
            invariant!(
                S,
                !std::mem::replace(&mut seen[id.0 as usize], true),
                "group id {} indexed twice",
                id.0
            );
            invariant!(
                S,
                Self::encode_group(&group.events) == *key,
                "group index key does not re-encode group {}",
                id.0
            );
        }
        for (idx, group) in self.groups.iter().enumerate() {
            invariant!(
                S,
                group.events.len() == self.k,
                "group {idx} has {} events at level k={}",
                group.events.len(),
                self.k
            );
            invariant!(
                S,
                group.events.windows(2).all(|w| w[0] < w[1]),
                "events of group {idx} are not canonically sorted"
            );
            invariant!(
                S,
                ascends(&group.support),
                "support of group {idx} is not strictly ascending"
            );
            for &pid in &group.patterns {
                let Some(entry) = self.patterns.get(pid.0 as usize) else {
                    return Err(InvariantViolation::new(
                        S,
                        format!("group {idx} lists pattern id {} out of range", pid.0),
                    ));
                };
                invariant!(
                    S,
                    entry.pattern.events() == group.events.as_slice(),
                    "pattern {} listed under group {idx} has different events",
                    pid.0
                );
            }
        }
        Ok(())
    }

    fn validate_patterns(&self) -> Result<(), InvariantViolation> {
        const S: &str = "HlhK";
        invariant!(
            S,
            self.pattern_index.len() == self.patterns.len(),
            "pattern index has {} keys for {} arena entries",
            self.pattern_index.len(),
            self.patterns.len()
        );
        let mut seen = vec![false; self.patterns.len()];
        // lint:allow(determinism): order-insensitive validation conjunction
        for (key, &id) in &self.pattern_index {
            let Some(entry) = self.patterns.get(id.0 as usize) else {
                return Err(InvariantViolation::new(
                    S,
                    format!("pattern id {} out of range", id.0),
                ));
            };
            invariant!(
                S,
                !std::mem::replace(&mut seen[id.0 as usize], true),
                "pattern id {} indexed twice",
                id.0
            );
            invariant!(
                S,
                encode_pattern_key(&entry.pattern) == **key,
                "pattern index key does not re-encode pattern {}",
                id.0
            );
        }
        let num_bindings = self.pool.len().checked_div(self.k).unwrap_or(0);
        for (idx, entry) in self.patterns.iter().enumerate() {
            invariant!(
                S,
                ascends(&entry.support),
                "support of pattern {idx} is not strictly ascending"
            );
            if !self.record_bindings {
                invariant!(
                    S,
                    entry.granule_starts.is_empty() && entry.bindings.is_empty(),
                    "terminal level records bindings for pattern {idx}"
                );
                continue;
            }
            invariant!(
                S,
                entry.granule_starts.len() == entry.support.len(),
                "pattern {idx} has {} binding offsets for {} supporting granules",
                entry.granule_starts.len(),
                entry.support.len()
            );
            invariant!(
                S,
                entry.granule_starts.first().is_none_or(|&s| s == 0),
                "binding offsets of pattern {idx} do not start at 0"
            );
            invariant!(
                S,
                entry.granule_starts.windows(2).all(|w| w[0] < w[1]),
                "binding offsets of pattern {idx} are not strictly ascending"
            );
            invariant!(
                S,
                entry
                    .granule_starts
                    .last()
                    .is_none_or(|&s| (s as usize) < entry.bindings.len()),
                "binding offsets of pattern {idx} point past the binding list"
            );
            invariant!(
                S,
                entry.bindings.windows(2).all(|w| w[0] < w[1]),
                "binding ids of pattern {idx} are not strictly ascending"
            );
            invariant!(
                S,
                entry
                    .bindings
                    .last()
                    .is_none_or(|&b| (b as usize) < num_bindings),
                "pattern {idx} binds pool slots past the pool end"
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StpmConfig, Threshold};
    use crate::relation::RelationKind;
    use stpm_timeseries::{
        Alphabet, Interval, SeriesId, SymbolId, SymbolicDatabase, SymbolicSeries,
    };

    fn config(min_density: u64, min_season: u64) -> ResolvedConfig {
        StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(min_density),
            dist_interval: (1, 50),
            min_season,
            ..StpmConfig::default()
        }
        .resolve(100)
        .unwrap()
    }

    fn small_dseq() -> SequenceDatabase {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let c = SymbolicSeries::from_labels(
            "C",
            &["1", "1", "0", "1", "0", "0", "0", "0", "0"],
            alphabet.clone(),
        )
        .unwrap();
        let d = SymbolicSeries::from_labels(
            "D",
            &["1", "0", "0", "1", "1", "0", "0", "0", "0"],
            alphabet,
        )
        .unwrap();
        SymbolicDatabase::new(vec![c, d])
            .unwrap()
            .to_sequence_database(3)
            .unwrap()
    }

    fn label(series: u32, symbol: u16) -> EventLabel {
        EventLabel::new(SeriesId(series), SymbolId(symbol))
    }

    /// Adds one occurrence the way the miner does: key + constructor.
    fn add(
        hlh: &mut HlhK,
        group: GroupId,
        pattern: &TemporalPattern,
        granule: GranulePos,
        binding: &[EventInstance],
    ) -> PatternId {
        let key = encode_pattern_key(pattern);
        let (prefix, last) = binding.split_at(binding.len() - 1);
        hlh.add_pattern_occurrence(group, &key, || pattern.clone(), granule, prefix, last[0])
    }

    #[test]
    fn hlh1_build_collects_support_and_instances() {
        let dseq = small_dseq();
        let hlh1 = Hlh1::build(&dseq, &config(1, 1), false);
        // Events: C:0, C:1, D:0, D:1.
        assert_eq!(hlh1.len(), 4);
        assert!(!hlh1.is_empty());
        let c1 = label(0, 1);
        assert_eq!(hlh1.support(c1), &[1, 2]);
        assert_eq!(hlh1.instances_at(c1, 1).len(), 1);
        assert_eq!(hlh1.instances_at(c1, 1)[0].interval, Interval::new(1, 2));
        assert_eq!(hlh1.instances_at(c1, 3).len(), 0);
        assert!(hlh1.entry(c1).is_some());
        assert!(hlh1.entry(label(5, 0)).is_none());
        assert!(hlh1.footprint_bytes() > 0);
        // The cached label list is sorted and complete.
        assert_eq!(hlh1.labels().len(), 4);
        assert!(hlh1.labels().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn hlh1_candidate_filter_drops_rare_events() {
        let dseq = small_dseq();
        // minDensity 2, minSeason 2 → an event needs support >= 4 to be a candidate.
        let cfg = config(2, 2);
        let all = Hlh1::build(&dseq, &cfg, false);
        let filtered = Hlh1::build(&dseq, &cfg, true);
        assert!(filtered.len() < all.len());
        // C:0 occurs in granules 1, 2, 3 (support 3 < 4) → pruned.
        assert!(filtered.entry(label(0, 0)).is_none());
        // Support lookups for pruned events return the empty slice.
        assert!(filtered.support(label(0, 0)).is_empty());
        // The label cache reflects the filtering.
        assert_eq!(filtered.labels().len(), filtered.len());
        assert!(!filtered.labels().contains(&label(0, 0)));
    }

    #[test]
    fn hlh1_multiple_instances_in_one_granule() {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        // 1,0,1 inside a single granule → two instances of C:1 at granule 1.
        let c = SymbolicSeries::from_labels("C", &["1", "0", "1"], alphabet).unwrap();
        let dseq = SymbolicDatabase::new(vec![c])
            .unwrap()
            .to_sequence_database(3)
            .unwrap();
        let hlh1 = Hlh1::build(&dseq, &config(1, 1), false);
        let entry = hlh1.entry(label(0, 1)).unwrap();
        assert_eq!(hlh1.instances_at(label(0, 1), 1).len(), 2);
        assert_eq!(entry.instances_at_index(0).len(), 2);
    }

    #[test]
    fn hlhk_group_and_pattern_bookkeeping() {
        let cfg = config(1, 1);
        let mut hlh2 = HlhK::new(2);
        assert_eq!(hlh2.k(), 2);
        let group = vec![label(0, 1), label(1, 1)];
        let gid = hlh2.insert_group(group.clone(), vec![1, 2, 4]);
        // Re-registering returns the same id.
        assert_eq!(hlh2.insert_group(group.clone(), vec![9]), gid);
        assert_eq!(hlh2.num_groups(), 1);
        assert!(hlh2.group(&group).is_some());
        assert_eq!(hlh2.group(&group).unwrap().support, vec![1, 2, 4]);
        assert!(hlh2.group(&[label(0, 0)]).is_none());

        let pattern =
            TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Contains, false);
        let binding = [
            EventInstance::new(label(0, 1), Interval::new(1, 2)),
            EventInstance::new(label(1, 1), Interval::new(1, 1)),
        ];
        let pid = add(&mut hlh2, gid, &pattern, 1, &binding);
        assert_eq!(add(&mut hlh2, gid, &pattern, 1, &binding), pid);
        assert_eq!(add(&mut hlh2, gid, &pattern, 4, &binding), pid);

        assert_eq!(hlh2.num_patterns(), 1);
        let entry = hlh2.pattern(pid);
        assert_eq!(entry.support, vec![1, 4]);
        assert_eq!(entry.num_bindings(), 3);
        assert_eq!(hlh2.bindings_at(pid, 1).count(), 2);
        assert_eq!(hlh2.bindings_at(pid, 4).count(), 1);
        assert_eq!(hlh2.bindings_at(pid, 2).count(), 0);
        // Every stored binding is the instance pair, in event order.
        for slice in hlh2.bindings_at(pid, 1) {
            assert_eq!(slice, &binding);
        }
        assert_eq!(entry.binding_ids_at_index(0).len(), 2);
        assert_eq!(hlh2.patterns_of_group(&group).len(), 1);
        assert!(hlh2.has_relation_between(label(0, 1), label(1, 1)));
        assert!(hlh2.has_relation_between(label(1, 1), label(0, 1)));
        assert!(!hlh2.has_relation_between(label(0, 1), label(0, 0)));
        assert_eq!(hlh2.participating_events(), vec![label(0, 1), label(1, 1)]);
        assert!(hlh2.footprint_bytes() > 0);
        assert!(!hlh2.is_empty());
        let _ = cfg;
    }

    #[test]
    fn hlhk_retain_candidates_compacts_table_and_pool() {
        // minDensity 1, minSeason 2 → a candidate needs support >= 2.
        let cfg = config(1, 2);
        let mut hlh2 = HlhK::new(2);
        let group_a = vec![label(0, 1), label(1, 1)];
        let group_b = vec![label(0, 1), label(1, 0)];
        let ga = hlh2.insert_group(group_a.clone(), vec![1, 2]);
        let gb = hlh2.insert_group(group_b.clone(), vec![3]);

        let strong =
            TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Follows, false);
        let weak = TemporalPattern::pair([label(0, 1), label(1, 0)], RelationKind::Follows, false);
        let binding = [
            EventInstance::new(label(0, 1), Interval::new(1, 1)),
            EventInstance::new(label(1, 1), Interval::new(2, 2)),
        ];
        add(&mut hlh2, ga, &strong, 1, &binding);
        add(&mut hlh2, ga, &strong, 2, &binding);
        add(&mut hlh2, gb, &weak, 3, &binding);

        assert_eq!(hlh2.num_patterns(), 2);
        let footprint_before = hlh2.footprint_bytes();
        let removed = hlh2.retain_candidates(&cfg);
        assert_eq!(removed, 1);
        assert_eq!(hlh2.num_patterns(), 1);
        assert_eq!(hlh2.patterns()[0].pattern, strong);
        assert!(hlh2.patterns_of_group(&group_b).is_empty());
        assert_eq!(hlh2.patterns_of_group(&group_a).len(), 1);
        // group_b lost its last pattern: it is gone from the group table too,
        // so group counts and footprints only reflect live candidates.
        assert_eq!(hlh2.num_groups(), 1);
        assert!(hlh2.group(&group_b).is_none());
        assert!(hlh2.group(&group_a).is_some());
        assert!(hlh2.footprint_bytes() < footprint_before);
        // The pool was compacted alongside (2 surviving bindings × k = 2).
        assert_eq!(hlh2.pool.len(), 4);
        assert_eq!(hlh2.bindings_at(PatternId(0), 2).count(), 1);
        // Retaining again removes nothing.
        assert_eq!(hlh2.retain_candidates(&cfg), 0);
    }

    #[test]
    fn merge_shards_concatenates_disjoint_levels_in_shard_order() {
        let binding = |sym_a: u16, sym_b: u16| {
            [
                EventInstance::new(label(0, sym_a), Interval::new(1, 2)),
                EventInstance::new(label(1, sym_b), Interval::new(1, 1)),
            ]
        };
        let group_a = vec![label(0, 0), label(1, 0)];
        let group_b = vec![label(0, 1), label(1, 1)];
        let pattern_a =
            TemporalPattern::pair([label(0, 0), label(1, 0)], RelationKind::Follows, false);
        let pattern_b =
            TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Contains, false);

        let mut shard1 = HlhK::new(2);
        let g1 = shard1.insert_group(group_a.clone(), vec![1, 2]);
        add(&mut shard1, g1, &pattern_a, 1, &binding(0, 0));
        let mut shard2 = HlhK::new(2);
        let g2 = shard2.insert_group(group_b.clone(), vec![3]);
        add(&mut shard2, g2, &pattern_b, 3, &binding(1, 1));

        let merged = HlhK::merge_shards(2, vec![shard1, shard2]);
        assert_eq!(merged.num_groups(), 2);
        assert_eq!(merged.num_patterns(), 2);
        // Shard order is preserved in the pattern arena.
        assert_eq!(merged.patterns()[0].pattern, pattern_a);
        assert_eq!(merged.patterns()[1].pattern, pattern_b);
        // Group → pattern ids were remapped across the concatenation, and
        // binding ids still resolve into the concatenated pool.
        assert_eq!(merged.patterns_of_group(&group_b)[0].pattern, pattern_b);
        assert_eq!(merged.bindings_at(PatternId(1), 3).count(), 1);
        assert_eq!(
            merged.bindings_at(PatternId(1), 3).next().unwrap(),
            &binding(1, 1)
        );
        assert!(merged.has_relation_between(label(0, 1), label(1, 1)));

        // Merging empty shards yields an empty level.
        assert!(HlhK::merge_shards(2, vec![HlhK::new(2), HlhK::new(2)]).is_empty());
    }

    #[test]
    #[should_panic(expected = "group produced by two shards")]
    fn merge_shards_rejects_overlapping_shards() {
        let group = vec![label(0, 0), label(1, 0)];
        let mut shard1 = HlhK::new(2);
        shard1.insert_group(group.clone(), vec![1]);
        let mut shard2 = HlhK::new(2);
        shard2.insert_group(group, vec![1]);
        let _ = HlhK::merge_shards(2, vec![shard1, shard2]);
    }
}
