//! Hierarchical lookup hash structures `HLH_1` and `HLH_k` (Figures 4 and 5
//! of the paper).
//!
//! * [`Hlh1`] plays the role of the single-event hash table `EH` plus the
//!   event-granule hash table `GH`: for each candidate event it stores the
//!   support set and, aligned with it, the event instances occurring in each
//!   supporting granule.
//! * [`HlhK`] combines the k-event hash table `EH_k`, the pattern hash table
//!   `PH_k` and the pattern-granule hash table `GH_k`: candidate k-event
//!   groups point to their candidate patterns, and every pattern stores its
//!   supporting granules together with the instance bindings that realise it
//!   there (needed to verify relations when the pattern is extended).

use crate::config::ResolvedConfig;
use crate::fxhash::FxHashMap;
use crate::pattern::TemporalPattern;
use crate::support::SupportSet;
use stpm_timeseries::{EventInstance, EventLabel, GranulePos, SequenceDatabase};

/// Per-event entry of `HLH_1`: support set plus the instances per supporting
/// granule (`instances[i]` belongs to granule `support[i]`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventEntry {
    /// Sorted granule positions where the event occurs.
    pub support: SupportSet,
    /// Instances of the event per supporting granule, aligned with `support`.
    pub instances: Vec<Vec<EventInstance>>,
}

impl EventEntry {
    /// Instances of the event in granule `granule`, or an empty slice.
    #[must_use]
    pub fn instances_at(&self, granule: GranulePos) -> &[EventInstance] {
        match self.support.binary_search(&granule) {
            Ok(idx) => &self.instances[idx],
            Err(_) => &[],
        }
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.support.len() * std::mem::size_of::<GranulePos>()
            + self
                .instances
                .iter()
                .map(|v| {
                    v.len() * std::mem::size_of::<EventInstance>()
                        + std::mem::size_of::<Vec<EventInstance>>()
                })
                .sum::<usize>()
    }
}

/// The hierarchical lookup hash structure for single events (`HLH_1`).
#[derive(Debug, Clone, Default)]
pub struct Hlh1 {
    events: FxHashMap<EventLabel, EventEntry>,
}

impl Hlh1 {
    /// Scans `D_SEQ` once and builds `HLH_1`. When `candidates_only` is set
    /// (the Apriori-like pruning of E-STPM), only events whose `maxSeason`
    /// reaches `minSeason` are kept; otherwise every event with non-empty
    /// support is retained.
    #[must_use]
    pub fn build(dseq: &SequenceDatabase, config: &ResolvedConfig, candidates_only: bool) -> Self {
        let mut events: FxHashMap<EventLabel, EventEntry> = FxHashMap::default();
        for sequence in dseq.sequences() {
            let granule = sequence.granule();
            for instance in sequence.instances() {
                let entry = events.entry(instance.label).or_default();
                match entry.support.last() {
                    Some(&last) if last == granule => {
                        let idx = entry.instances.len() - 1;
                        entry.instances[idx].push(*instance);
                    }
                    _ => {
                        entry.support.push(granule);
                        entry.instances.push(vec![*instance]);
                    }
                }
            }
        }
        if candidates_only {
            events.retain(|_, entry| config.is_candidate(entry.support.len()));
        }
        Self { events }
    }

    /// The candidate event labels, sorted canonically.
    #[must_use]
    pub fn labels(&self) -> Vec<EventLabel> {
        let mut labels: Vec<EventLabel> = self.events.keys().copied().collect();
        labels.sort_unstable();
        labels
    }

    /// Entry of one event label.
    #[must_use]
    pub fn entry(&self, label: EventLabel) -> Option<&EventEntry> {
        self.events.get(&label)
    }

    /// Support set of one event (empty when the event is not a candidate).
    #[must_use]
    pub fn support(&self, label: EventLabel) -> &[GranulePos] {
        self.events.get(&label).map_or(&[], |e| &e.support)
    }

    /// Instances of one event in one granule.
    #[must_use]
    pub fn instances_at(&self, label: EventLabel, granule: GranulePos) -> &[EventInstance] {
        self.events
            .get(&label)
            .map_or(&[] as &[EventInstance], |e| e.instances_at(granule))
    }

    /// Number of events held in the structure.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Approximate heap footprint in bytes (reported by the memory
    /// experiments of Figures 9/10/19/20).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.events
            .values()
            .map(|entry| {
                std::mem::size_of::<EventLabel>()
                    + std::mem::size_of::<EventEntry>()
                    + entry.footprint_bytes()
            })
            .sum()
    }
}

/// One instance binding of a pattern in a granule: `binding[i]` is the
/// instance realising the pattern's `events()[i]`.
pub type Binding = Vec<EventInstance>;

/// Per-pattern entry of `HLH_k`: the pattern, its support set, and the
/// instance bindings per supporting granule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternEntry {
    /// The candidate pattern.
    pub pattern: TemporalPattern,
    /// Sorted granule positions where the pattern occurs.
    pub support: SupportSet,
    /// All bindings per supporting granule, aligned with `support`.
    pub bindings: Vec<Vec<Binding>>,
}

impl PatternEntry {
    /// Bindings of the pattern in granule `granule`, or an empty slice.
    #[must_use]
    pub fn bindings_at(&self, granule: GranulePos) -> &[Binding] {
        match self.support.binary_search(&granule) {
            Ok(idx) => &self.bindings[idx],
            Err(_) => &[],
        }
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        let binding_bytes: usize = self
            .bindings
            .iter()
            .flat_map(|per_granule| per_granule.iter())
            .map(|b| {
                b.len() * std::mem::size_of::<EventInstance>() + std::mem::size_of::<Binding>()
            })
            .sum();
        self.support.len() * std::mem::size_of::<GranulePos>()
            + binding_bytes
            + std::mem::size_of_val(self.pattern.events())
            + self.pattern.triples().len() * 4
    }
}

/// Per-group entry of `HLH_k`: the sorted event group, its support set, and
/// the indices (into [`HlhK::patterns`]) of its candidate patterns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GroupEntry {
    /// The support set of the event group.
    pub support: SupportSet,
    /// Indices of the group's candidate patterns in the pattern table.
    pub patterns: Vec<usize>,
}

/// The hierarchical lookup hash structure for k-event groups and patterns
/// (`HLH_k`, k ≥ 2).
#[derive(Debug, Clone, Default)]
pub struct HlhK {
    k: usize,
    groups: FxHashMap<Vec<EventLabel>, GroupEntry>,
    patterns: Vec<PatternEntry>,
    pattern_index: FxHashMap<TemporalPattern, usize>,
}

impl HlhK {
    /// Creates an empty structure for k-event groups.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            k,
            groups: FxHashMap::default(),
            patterns: Vec::new(),
            pattern_index: FxHashMap::default(),
        }
    }

    /// The `k` of this level.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Registers a candidate k-event group with its support set.
    pub fn insert_group(&mut self, events: Vec<EventLabel>, support: SupportSet) {
        self.groups.entry(events).or_insert(GroupEntry {
            support,
            patterns: Vec::new(),
        });
    }

    /// The candidate k-event groups, sorted canonically.
    #[must_use]
    pub fn groups(&self) -> Vec<(&Vec<EventLabel>, &GroupEntry)> {
        let mut groups: Vec<_> = self.groups.iter().collect();
        groups.sort_by(|a, b| a.0.cmp(b.0));
        groups
    }

    /// Entry of one group.
    #[must_use]
    pub fn group(&self, events: &[EventLabel]) -> Option<&GroupEntry> {
        self.groups.get(events)
    }

    /// Adds one occurrence (granule + binding) of a candidate pattern that
    /// belongs to `group`. Creates the pattern entry on first use.
    pub fn add_pattern_occurrence(
        &mut self,
        group: &[EventLabel],
        pattern: &TemporalPattern,
        granule: GranulePos,
        binding: Binding,
    ) {
        let idx = match self.pattern_index.get(pattern) {
            Some(idx) => *idx,
            None => {
                let idx = self.patterns.len();
                self.patterns.push(PatternEntry {
                    pattern: pattern.clone(),
                    support: Vec::new(),
                    bindings: Vec::new(),
                });
                self.pattern_index.insert(pattern.clone(), idx);
                if let Some(entry) = self.groups.get_mut(group) {
                    entry.patterns.push(idx);
                }
                idx
            }
        };
        let entry = &mut self.patterns[idx];
        match entry.support.last() {
            Some(&last) if last == granule => {
                let last_idx = entry.bindings.len() - 1;
                entry.bindings[last_idx].push(binding);
            }
            _ => {
                entry.support.push(granule);
                entry.bindings.push(vec![binding]);
            }
        }
    }

    /// Drops the candidate patterns that fail the `maxSeason` gate (applied
    /// after all occurrences of a group have been collected), together with
    /// any group whose pattern list becomes empty — such a group would never
    /// be extended again, so keeping it would only inflate `num_groups()` and
    /// `footprint_bytes()`. Returns the number of patterns removed.
    pub fn retain_candidates(&mut self, config: &ResolvedConfig) -> usize {
        let mut removed = 0usize;
        let mut keep = vec![false; self.patterns.len()];
        for (idx, entry) in self.patterns.iter().enumerate() {
            keep[idx] = config.is_candidate(entry.support.len());
            if !keep[idx] {
                removed += 1;
            }
        }
        if removed == 0 {
            return 0;
        }
        // Compact the pattern table and remap group/pattern indices.
        let mut remap: Vec<Option<usize>> = vec![None; self.patterns.len()];
        let mut new_patterns = Vec::with_capacity(self.patterns.len() - removed);
        for (idx, entry) in self.patterns.drain(..).enumerate() {
            if keep[idx] {
                remap[idx] = Some(new_patterns.len());
                new_patterns.push(entry);
            }
        }
        self.patterns = new_patterns;
        self.pattern_index = self
            .patterns
            .iter()
            .enumerate()
            .map(|(i, e)| (e.pattern.clone(), i))
            .collect();
        for entry in self.groups.values_mut() {
            entry.patterns = entry
                .patterns
                .iter()
                .filter_map(|idx| remap[*idx])
                .collect();
        }
        self.groups.retain(|_, entry| !entry.patterns.is_empty());
        removed
    }

    /// Merges per-shard levels produced by parallel mining into one `HLH_k`,
    /// preserving shard order. Sharding partitions the candidate space so
    /// that every group (and therefore every pattern) is produced by exactly
    /// one shard; concatenating the pattern tables in shard order makes the
    /// merged level identical to the one sequential mining builds.
    ///
    /// # Panics
    /// Panics when two shards produced the same group or pattern — that
    /// would mean the shards did not partition the candidate space.
    #[must_use]
    pub fn merge_shards(k: usize, shards: Vec<HlhK>) -> Self {
        let mut merged = Self::new(k);
        for shard in shards {
            assert_eq!(shard.k, k, "cannot merge levels of different k");
            let offset = merged.patterns.len();
            for (idx, entry) in shard.patterns.into_iter().enumerate() {
                let previous = merged
                    .pattern_index
                    .insert(entry.pattern.clone(), offset + idx);
                assert!(previous.is_none(), "pattern produced by two shards");
                merged.patterns.push(entry);
            }
            for (events, mut entry) in shard.groups {
                for pattern_idx in &mut entry.patterns {
                    *pattern_idx += offset;
                }
                let previous = merged.groups.insert(events, entry);
                assert!(previous.is_none(), "group produced by two shards");
            }
        }
        merged
    }

    /// The candidate pattern entries of this level.
    #[must_use]
    pub fn patterns(&self) -> &[PatternEntry] {
        &self.patterns
    }

    /// The pattern entries belonging to one group.
    #[must_use]
    pub fn patterns_of_group(&self, events: &[EventLabel]) -> Vec<&PatternEntry> {
        self.groups
            .get(events)
            .map(|g| g.patterns.iter().map(|idx| &self.patterns[*idx]).collect())
            .unwrap_or_default()
    }

    /// Whether any candidate pattern of this level relates the two events
    /// (in either orientation). This is the lookup behind the transitivity
    /// pruning (Lemma 4) and the iterative verification of Section IV-D.
    #[must_use]
    pub fn has_relation_between(&self, a: EventLabel, b: EventLabel) -> bool {
        let key = if a <= b { vec![a, b] } else { vec![b, a] };
        self.groups
            .get(&key)
            .is_some_and(|g| !g.patterns.is_empty())
    }

    /// Number of candidate groups.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of candidate patterns.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the level holds no candidate patterns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The distinct event labels participating in any candidate pattern of
    /// this level (used to build `FilteredF_1`).
    #[must_use]
    pub fn participating_events(&self) -> Vec<EventLabel> {
        let mut labels: Vec<EventLabel> = self
            .patterns
            .iter()
            .flat_map(|p| p.pattern.events().iter().copied())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        let group_bytes: usize = self
            .groups
            .iter()
            .map(|(events, entry)| {
                events.len() * std::mem::size_of::<EventLabel>()
                    + entry.support.len() * std::mem::size_of::<GranulePos>()
                    + entry.patterns.len() * std::mem::size_of::<usize>()
            })
            .sum();
        let pattern_bytes: usize = self
            .patterns
            .iter()
            .map(PatternEntry::footprint_bytes)
            .sum();
        group_bytes + pattern_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StpmConfig, Threshold};
    use crate::relation::RelationKind;
    use stpm_timeseries::{
        Alphabet, Interval, SeriesId, SymbolId, SymbolicDatabase, SymbolicSeries,
    };

    fn config(min_density: u64, min_season: u64) -> ResolvedConfig {
        StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(min_density),
            dist_interval: (1, 50),
            min_season,
            ..StpmConfig::default()
        }
        .resolve(100)
        .unwrap()
    }

    fn small_dseq() -> SequenceDatabase {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let c = SymbolicSeries::from_labels(
            "C",
            &["1", "1", "0", "1", "0", "0", "0", "0", "0"],
            alphabet.clone(),
        )
        .unwrap();
        let d = SymbolicSeries::from_labels(
            "D",
            &["1", "0", "0", "1", "1", "0", "0", "0", "0"],
            alphabet,
        )
        .unwrap();
        SymbolicDatabase::new(vec![c, d])
            .unwrap()
            .to_sequence_database(3)
            .unwrap()
    }

    fn label(series: u32, symbol: u16) -> EventLabel {
        EventLabel::new(SeriesId(series), SymbolId(symbol))
    }

    #[test]
    fn hlh1_build_collects_support_and_instances() {
        let dseq = small_dseq();
        let hlh1 = Hlh1::build(&dseq, &config(1, 1), false);
        // Events: C:0, C:1, D:0, D:1.
        assert_eq!(hlh1.len(), 4);
        assert!(!hlh1.is_empty());
        let c1 = label(0, 1);
        assert_eq!(hlh1.support(c1), &[1, 2]);
        assert_eq!(hlh1.instances_at(c1, 1).len(), 1);
        assert_eq!(hlh1.instances_at(c1, 1)[0].interval, Interval::new(1, 2));
        assert_eq!(hlh1.instances_at(c1, 3).len(), 0);
        assert!(hlh1.entry(c1).is_some());
        assert!(hlh1.entry(label(5, 0)).is_none());
        assert!(hlh1.footprint_bytes() > 0);
        assert_eq!(hlh1.labels().len(), 4);
    }

    #[test]
    fn hlh1_candidate_filter_drops_rare_events() {
        let dseq = small_dseq();
        // minDensity 2, minSeason 2 → an event needs support >= 4 to be a candidate.
        let cfg = config(2, 2);
        let all = Hlh1::build(&dseq, &cfg, false);
        let filtered = Hlh1::build(&dseq, &cfg, true);
        assert!(filtered.len() < all.len());
        // C:0 occurs in granules 1, 2, 3 (support 3 < 4) → pruned.
        assert!(filtered.entry(label(0, 0)).is_none());
        // Support lookups for pruned events return the empty slice.
        assert!(filtered.support(label(0, 0)).is_empty());
    }

    #[test]
    fn hlh1_multiple_instances_in_one_granule() {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        // 1,0,1 inside a single granule → two instances of C:1 at granule 1.
        let c = SymbolicSeries::from_labels("C", &["1", "0", "1"], alphabet).unwrap();
        let dseq = SymbolicDatabase::new(vec![c])
            .unwrap()
            .to_sequence_database(3)
            .unwrap();
        let hlh1 = Hlh1::build(&dseq, &config(1, 1), false);
        assert_eq!(hlh1.instances_at(label(0, 1), 1).len(), 2);
    }

    #[test]
    fn hlhk_group_and_pattern_bookkeeping() {
        let cfg = config(1, 1);
        let mut hlh2 = HlhK::new(2);
        assert_eq!(hlh2.k(), 2);
        let group = vec![label(0, 1), label(1, 1)];
        hlh2.insert_group(group.clone(), vec![1, 2, 4]);
        assert_eq!(hlh2.num_groups(), 1);
        assert!(hlh2.group(&group).is_some());
        assert!(hlh2.group(&[label(0, 0)]).is_none());

        let pattern =
            TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Contains, false);
        let binding = vec![
            EventInstance::new(label(0, 1), Interval::new(1, 2)),
            EventInstance::new(label(1, 1), Interval::new(1, 1)),
        ];
        hlh2.add_pattern_occurrence(&group, &pattern, 1, binding.clone());
        hlh2.add_pattern_occurrence(&group, &pattern, 1, binding.clone());
        hlh2.add_pattern_occurrence(&group, &pattern, 4, binding);

        assert_eq!(hlh2.num_patterns(), 1);
        let entry = &hlh2.patterns()[0];
        assert_eq!(entry.support, vec![1, 4]);
        assert_eq!(entry.bindings_at(1).len(), 2);
        assert_eq!(entry.bindings_at(4).len(), 1);
        assert!(entry.bindings_at(2).is_empty());
        assert_eq!(hlh2.patterns_of_group(&group).len(), 1);
        assert!(hlh2.has_relation_between(label(0, 1), label(1, 1)));
        assert!(hlh2.has_relation_between(label(1, 1), label(0, 1)));
        assert!(!hlh2.has_relation_between(label(0, 1), label(0, 0)));
        assert_eq!(hlh2.participating_events(), vec![label(0, 1), label(1, 1)]);
        assert!(hlh2.footprint_bytes() > 0);
        assert!(!hlh2.is_empty());
        let _ = cfg;
    }

    #[test]
    fn hlhk_retain_candidates_compacts_table() {
        // minDensity 1, minSeason 2 → a candidate needs support >= 2.
        let cfg = config(1, 2);
        let mut hlh2 = HlhK::new(2);
        let group_a = vec![label(0, 1), label(1, 1)];
        let group_b = vec![label(0, 1), label(1, 0)];
        hlh2.insert_group(group_a.clone(), vec![1, 2]);
        hlh2.insert_group(group_b.clone(), vec![3]);

        let strong =
            TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Follows, false);
        let weak = TemporalPattern::pair([label(0, 1), label(1, 0)], RelationKind::Follows, false);
        let binding = vec![
            EventInstance::new(label(0, 1), Interval::new(1, 1)),
            EventInstance::new(label(1, 1), Interval::new(2, 2)),
        ];
        hlh2.add_pattern_occurrence(&group_a, &strong, 1, binding.clone());
        hlh2.add_pattern_occurrence(&group_a, &strong, 2, binding.clone());
        hlh2.add_pattern_occurrence(&group_b, &weak, 3, binding);

        assert_eq!(hlh2.num_patterns(), 2);
        let footprint_before = hlh2.footprint_bytes();
        let removed = hlh2.retain_candidates(&cfg);
        assert_eq!(removed, 1);
        assert_eq!(hlh2.num_patterns(), 1);
        assert_eq!(hlh2.patterns()[0].pattern, strong);
        assert!(hlh2.patterns_of_group(&group_b).is_empty());
        assert_eq!(hlh2.patterns_of_group(&group_a).len(), 1);
        // group_b lost its last pattern: it is gone from the group table too,
        // so group counts and footprints only reflect live candidates.
        assert_eq!(hlh2.num_groups(), 1);
        assert!(hlh2.group(&group_b).is_none());
        assert!(hlh2.group(&group_a).is_some());
        assert!(hlh2.footprint_bytes() < footprint_before);
        // Retaining again removes nothing.
        assert_eq!(hlh2.retain_candidates(&cfg), 0);
    }

    #[test]
    fn merge_shards_concatenates_disjoint_levels_in_shard_order() {
        let binding = |sym_a: u16, sym_b: u16| {
            vec![
                EventInstance::new(label(0, sym_a), Interval::new(1, 2)),
                EventInstance::new(label(1, sym_b), Interval::new(1, 1)),
            ]
        };
        let group_a = vec![label(0, 0), label(1, 0)];
        let group_b = vec![label(0, 1), label(1, 1)];
        let pattern_a =
            TemporalPattern::pair([label(0, 0), label(1, 0)], RelationKind::Follows, false);
        let pattern_b =
            TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Contains, false);

        let mut shard1 = HlhK::new(2);
        shard1.insert_group(group_a.clone(), vec![1, 2]);
        shard1.add_pattern_occurrence(&group_a, &pattern_a, 1, binding(0, 0));
        let mut shard2 = HlhK::new(2);
        shard2.insert_group(group_b.clone(), vec![3]);
        shard2.add_pattern_occurrence(&group_b, &pattern_b, 3, binding(1, 1));

        let merged = HlhK::merge_shards(2, vec![shard1, shard2]);
        assert_eq!(merged.num_groups(), 2);
        assert_eq!(merged.num_patterns(), 2);
        // Shard order is preserved in the pattern table.
        assert_eq!(merged.patterns()[0].pattern, pattern_a);
        assert_eq!(merged.patterns()[1].pattern, pattern_b);
        // Group → pattern indices were remapped across the concatenation.
        assert_eq!(merged.patterns_of_group(&group_b)[0].pattern, pattern_b);
        assert!(merged.has_relation_between(label(0, 1), label(1, 1)));

        // Merging empty shards yields an empty level.
        assert!(HlhK::merge_shards(2, vec![HlhK::new(2), HlhK::new(2)]).is_empty());
    }

    #[test]
    #[should_panic(expected = "group produced by two shards")]
    fn merge_shards_rejects_overlapping_shards() {
        let group = vec![label(0, 0), label(1, 0)];
        let mut shard1 = HlhK::new(2);
        shard1.insert_group(group.clone(), vec![1]);
        let mut shard2 = HlhK::new(2);
        shard2.insert_group(group, vec![1]);
        let _ = HlhK::merge_shards(2, vec![shard1, shard2]);
    }
}
