//! A small, fast, non-cryptographic hasher (the FxHash algorithm used by the
//! Rust compiler) plus `HashMap`/`HashSet` aliases built on it.
//!
//! The mining algorithm performs a very large number of hash-table lookups on
//! small integer keys (event labels, granule positions, packed pattern ids);
//! SipHash dominates the profile there, so the hierarchical lookup hash
//! structures use this hasher instead. Implemented locally to stay within the
//! approved dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant of the FxHash mixing step (64-bit golden-ratio
/// derived constant, identical to the one used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        let builder = FxBuildHasher::default();
        builder.hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn different_inputs_generally_hash_differently() {
        let values: Vec<u64> = (0..1000).collect();
        let hashes: FxHashSet<u64> = values.iter().map(hash_of).collect();
        // No collisions expected over a tiny dense range.
        assert_eq!(hashes.len(), values.len());
    }

    #[test]
    fn works_with_composite_keys_and_strings() {
        let mut map: FxHashMap<(u32, u16), &str> = FxHashMap::default();
        map.insert((1, 2), "a");
        map.insert((1, 3), "b");
        assert_eq!(map.get(&(1, 2)), Some(&"a"));
        assert_eq!(map.get(&(1, 3)), Some(&"b"));
        assert_eq!(map.get(&(2, 2)), None);

        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        // Byte-string lengths not divisible by 8 exercise the remainder path.
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 4][..]));
    }

    #[test]
    fn set_behaves_like_std_set() {
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
        assert!(set.contains(&7));
        assert_eq!(set.len(), 1);
    }
}
