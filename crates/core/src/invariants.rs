//! Runtime structural-invariant validation for the mining state.
//!
//! The CSR-shaped structures of this crate ([`HlhK`](crate::hlh::HlhK)'s
//! arenas and binding pool, [`VerdictTable`](crate::hlh::VerdictTable)'s
//! block offsets, [`Seasons`](crate::season::Seasons) spans, the
//! [`StreamingMiner`](crate::streaming::StreamingMiner) tracker state) rely
//! on layout invariants — monotone offset arrays, in-bounds slices, index
//! maps consistent with their arenas — that ordinary unit tests only probe
//! indirectly. Each of those types exposes a `validate` method that checks
//! its invariants exhaustively and reports the first violation.
//!
//! The validators are **always compiled** (property-test suites call them
//! directly on arbitrary inputs), but the production call sites at miner
//! level boundaries are **gated**: they run under `debug_assertions` or when
//! the `strict-invariants` cargo feature is enabled, and compile to nothing
//! in an ordinary release build. Enable the feature to keep the checks in an
//! optimized build:
//!
//! ```text
//! cargo test --features strict-invariants
//! ```

use std::fmt;

/// A violated structural invariant: which structure, and what the walk
/// found. Produced by the `validate` methods; carried as the panic payload
/// of the gated call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The structure whose invariant failed (e.g. `"HlhK"`).
    pub structure: &'static str,
    /// Description of the first violation found.
    pub detail: String,
}

impl InvariantViolation {
    /// Creates a violation report for `structure`.
    #[must_use]
    pub fn new(structure: &'static str, detail: impl Into<String>) -> Self {
        Self {
            structure,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} invariant violated: {}", self.structure, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

/// Whether the gated validation call sites are active in this build:
/// `true` under `debug_assertions` or with the `strict-invariants` feature.
#[must_use]
pub fn strict_checks_enabled() -> bool {
    cfg!(any(debug_assertions, feature = "strict-invariants"))
}

/// Runs a `validate()` expression when strict checks are enabled and panics
/// on a violation. In a release build without the `strict-invariants`
/// feature the branch is statically false and the whole call folds away.
macro_rules! debug_validate {
    ($validation:expr) => {
        if $crate::invariants::strict_checks_enabled() {
            if let Err(violation) = $validation {
                panic!("{violation}");
            }
        }
    };
}

pub(crate) use debug_validate;

/// Shorthand used by the validators: fails with a formatted violation.
macro_rules! invariant {
    ($structure:expr, $cond:expr, $($msg:tt)+) => {
        if !$cond {
            return Err($crate::invariants::InvariantViolation::new(
                $structure,
                format!($($msg)+),
            ));
        }
    };
}

pub(crate) use invariant;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_names_structure() {
        let violation = InvariantViolation::new("HlhK", "pool length 7 not a multiple of k=2");
        assert_eq!(
            violation.to_string(),
            "HlhK invariant violated: pool length 7 not a multiple of k=2"
        );
    }

    #[test]
    fn strict_checks_follow_build_profile() {
        // Under `cargo test` debug_assertions are on, so the gated call
        // sites must be active.
        assert!(strict_checks_enabled());
    }
}
