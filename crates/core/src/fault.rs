//! Deterministic fault injection and resource-budget primitives for the
//! persistence stack.
//!
//! The snapshot/WAL layer talks to the filesystem through the
//! [`StorageBackend`] trait instead of calling `std::fs` directly. Every
//! I/O call names the [`Failpoint`] it executes under, which gives tests a
//! stable vocabulary for scheduling failures: [`RealFs`] ignores the names
//! and forwards to the operating system, while [`FaultyFs`] is a pure
//! in-memory filesystem with an explicit *volatile vs. durable* split that
//! can fail the Nth operation at a failpoint, tear a write, lie about an
//! fsync, or return transient `EAGAIN`-style errors — all reproducibly from
//! a seed, with no wall-clock or OS randomness involved.
//!
//! Two more pieces live here because they are consumed by the same callers:
//!
//! * [`RetryPolicy`] — bounded retries with exponential backoff and
//!   deterministic seeded jitter, applied to WAL appends and snapshot
//!   writes. Only *transient* errors ([`RetryPolicy::is_transient`]) are
//!   retried; permanent failures surface immediately.
//! * [`MemoryBudget`] — a per-miner cap on live state. The streaming
//!   pipeline spills a miner that exceeds its budget to a cold file and
//!   rehydrates it on the next append (graceful degradation rather than
//!   unbounded growth).
//!
//! The crash model mirrors what the durability code assumes of a real
//! filesystem: writing mutates *volatile* content only; `fsync` on a file
//! commits its bytes; `fsync` on the parent directory commits namespace
//! operations (create/rename/remove). [`FaultyFs::crash`] discards
//! everything volatile, which is exactly the state a machine reboot would
//! leave behind.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The name of an instrumented I/O boundary in the persistence path.
///
/// Failpoints are plain `&'static str` constants (see [`failpoints`]) so
/// that tests, error messages, and the chaos sweep all share one stable
/// vocabulary.
pub type Failpoint = &'static str;

/// Named failpoints registered by the persistence path.
///
/// Each constant names one I/O operation a [`StorageBackend`] performs on
/// behalf of the streaming pipeline. The chaos harness iterates
/// [`failpoints::ALL`] and schedules a crash at every entry.
pub mod failpoints {
    use super::Failpoint;

    /// Creating the tmp sibling during an atomic snapshot.
    pub const SNAPSHOT_CREATE_TMP: Failpoint = "snapshot_to.create_tmp";
    /// Writing the encoded snapshot bytes into the tmp sibling.
    pub const SNAPSHOT_WRITE: Failpoint = "snapshot_to.write";
    /// Fsyncing the tmp sibling before the rename.
    pub const SNAPSHOT_SYNC: Failpoint = "snapshot_to.sync";
    /// Renaming the tmp sibling over the target path.
    pub const SNAPSHOT_RENAME: Failpoint = "snapshot_to.rename";
    /// Fsyncing the parent directory after the rename.
    pub const SNAPSHOT_DIR_SYNC: Failpoint = "snapshot_to.dir_sync";
    /// Removing the tmp sibling on the snapshot error path.
    pub const SNAPSHOT_REMOVE_TMP: Failpoint = "snapshot_to.remove_tmp";
    /// Writing a snapshot through a caller-supplied writer.
    pub const WRITER_WRITE: Failpoint = "snapshot_to_writer.write";
    /// Opening (or creating) the WAL file in `attach_wal`.
    pub const WAL_OPEN: Failpoint = "attach_wal.open";
    /// Reading existing WAL contents in `attach_wal`.
    pub const WAL_READ: Failpoint = "attach_wal.read";
    /// Writing the WAL header into a freshly created log.
    pub const WAL_WRITE_HEADER: Failpoint = "attach_wal.write_header";
    /// Fsyncing the freshly written WAL header.
    pub const WAL_HEADER_SYNC: Failpoint = "attach_wal.header_sync";
    /// Fsyncing the parent directory after creating a fresh WAL.
    pub const WAL_DIR_SYNC: Failpoint = "attach_wal.dir_sync";
    /// Truncating a torn tail off the WAL in `attach_wal`.
    pub const WAL_TRUNCATE_TAIL: Failpoint = "attach_wal.truncate_tail";
    /// Appending an encoded record to the WAL.
    pub const WAL_APPEND: Failpoint = "wal.append";
    /// Fsyncing the WAL after an append, before acknowledging the batch.
    pub const WAL_APPEND_SYNC: Failpoint = "wal.sync";
    /// Truncating the WAL back to its header after a durable snapshot.
    pub const WAL_RESET: Failpoint = "wal.reset";
    /// Reading the snapshot file at the start of `recover`.
    pub const RECOVER_READ_SNAPSHOT: Failpoint = "recover.read_snapshot";
    /// Reading the WAL file during `recover`.
    pub const RECOVER_READ_WAL: Failpoint = "recover.read_wal";
    /// Writing a spill file when a memory budget is exceeded.
    pub const BUDGET_SPILL_WRITE: Failpoint = "budget.spill_write";
    /// Reading a spill file back to rehydrate a spilled miner.
    pub const BUDGET_REHYDRATE_READ: Failpoint = "budget.rehydrate_read";

    /// Every failpoint the persistence path registers, in pipeline order.
    ///
    /// The chaos sweep iterates this list and schedules a crash at each
    /// entry; keep it in sync when instrumenting new I/O boundaries.
    pub const ALL: &[Failpoint] = &[
        SNAPSHOT_CREATE_TMP,
        SNAPSHOT_WRITE,
        SNAPSHOT_SYNC,
        SNAPSHOT_RENAME,
        SNAPSHOT_DIR_SYNC,
        SNAPSHOT_REMOVE_TMP,
        WRITER_WRITE,
        WAL_OPEN,
        WAL_READ,
        WAL_WRITE_HEADER,
        WAL_HEADER_SYNC,
        WAL_DIR_SYNC,
        WAL_TRUNCATE_TAIL,
        WAL_APPEND,
        WAL_APPEND_SYNC,
        WAL_RESET,
        RECOVER_READ_SNAPSHOT,
        RECOVER_READ_WAL,
        BUDGET_SPILL_WRITE,
        BUDGET_REHYDRATE_READ,
    ];
}

/// An open file handle obtained from a [`StorageBackend`].
///
/// Handles behave like a freshly opened `std::fs::File`: reads start at the
/// beginning, writes go to the end (handles are only ever opened in create
/// or append mode by the persistence path).
pub trait StorageFile {
    /// Write all of `bytes`, failing without a partial-success report.
    ///
    /// # Errors
    /// Propagates the underlying (or injected) I/O error; a torn write may
    /// leave a prefix of `bytes` in volatile file content.
    fn write_all(&mut self, failpoint: Failpoint, bytes: &[u8]) -> io::Result<()>;

    /// Flush file content to durable storage.
    ///
    /// # Errors
    /// Propagates the underlying (or injected) I/O error. A lying fsync
    /// returns `Ok` without committing anything.
    fn sync_all(&mut self, failpoint: Failpoint) -> io::Result<()>;

    /// Truncate (or zero-extend) the file to `len` bytes.
    ///
    /// # Errors
    /// Propagates the underlying (or injected) I/O error.
    fn set_len(&mut self, failpoint: Failpoint, len: u64) -> io::Result<()>;

    /// Append the entire file content to `out`, returning the byte count.
    ///
    /// # Errors
    /// Propagates the underlying (or injected) I/O error.
    fn read_to_end(&mut self, failpoint: Failpoint, out: &mut Vec<u8>) -> io::Result<usize>;
}

/// A pluggable filesystem used by the persistence path.
///
/// [`RealFs`] forwards to `std::fs`; [`FaultyFs`] is a deterministic
/// in-memory filesystem with crash semantics and scheduled faults. All
/// methods take the [`Failpoint`] they execute under so fault plans can
/// target individual operations.
pub trait StorageBackend: fmt::Debug {
    /// Create (truncating) a file for writing.
    ///
    /// # Errors
    /// Propagates the underlying (or injected) I/O error.
    fn create(&self, failpoint: Failpoint, path: &Path) -> io::Result<Box<dyn StorageFile + Send>>;

    /// Open a file for reading and appending, creating it if absent.
    ///
    /// # Errors
    /// Propagates the underlying (or injected) I/O error.
    fn open_append(
        &self,
        failpoint: Failpoint,
        path: &Path,
    ) -> io::Result<Box<dyn StorageFile + Send>>;

    /// Read an entire file into memory.
    ///
    /// # Errors
    /// Returns `ErrorKind::NotFound` for missing files (callers rely on
    /// this to distinguish first boot from corruption) or the injected
    /// fault.
    fn read(&self, failpoint: Failpoint, path: &Path) -> io::Result<Vec<u8>>;

    /// Atomically rename `from` to `to`.
    ///
    /// # Errors
    /// Propagates the underlying (or injected) I/O error.
    fn rename(&self, failpoint: Failpoint, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove a file.
    ///
    /// # Errors
    /// Propagates the underlying (or injected) I/O error.
    fn remove_file(&self, failpoint: Failpoint, path: &Path) -> io::Result<()>;

    /// Fsync a directory, committing namespace operations beneath it.
    ///
    /// # Errors
    /// Propagates the underlying (or injected) I/O error.
    fn sync_dir(&self, failpoint: Failpoint, path: &Path) -> io::Result<()>;

    /// A pure failpoint probe with no filesystem effect.
    ///
    /// Used where the pipeline writes through caller-supplied writers (no
    /// backend file is involved) but fault plans still need a hook.
    ///
    /// # Errors
    /// Returns the injected fault, if one is scheduled.
    fn failpoint(&self, failpoint: Failpoint) -> io::Result<()> {
        let _ = failpoint;
        Ok(())
    }
}

/// The production [`StorageBackend`]: forwards every call to `std::fs` and
/// ignores failpoint names.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

#[derive(Debug)]
struct RealFile(std::fs::File);

impl StorageFile for RealFile {
    fn write_all(&mut self, _failpoint: Failpoint, bytes: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, bytes)
    }

    fn sync_all(&mut self, _failpoint: Failpoint) -> io::Result<()> {
        self.0.sync_all()
    }

    fn set_len(&mut self, _failpoint: Failpoint, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn read_to_end(&mut self, _failpoint: Failpoint, out: &mut Vec<u8>) -> io::Result<usize> {
        io::Read::read_to_end(&mut self.0, out)
    }
}

impl StorageBackend for RealFs {
    fn create(
        &self,
        _failpoint: Failpoint,
        path: &Path,
    ) -> io::Result<Box<dyn StorageFile + Send>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }

    fn open_append(
        &self,
        _failpoint: Failpoint,
        path: &Path,
    ) -> io::Result<Box<dyn StorageFile + Send>> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn read(&self, _failpoint: Failpoint, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, _failpoint: Failpoint, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, _failpoint: Failpoint, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, _failpoint: Failpoint, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }
}

/// Forwarding impl so one shared backend (e.g. a [`FaultyFs`] driving many
/// tenants, or any backend handed out by a service) can be cloned cheaply
/// into every consumer as `Arc<dyn StorageBackend + Send + Sync>` and still
/// be passed wherever an owned `impl StorageBackend` is expected.
impl StorageBackend for Arc<dyn StorageBackend + Send + Sync> {
    fn create(&self, failpoint: Failpoint, path: &Path) -> io::Result<Box<dyn StorageFile + Send>> {
        (**self).create(failpoint, path)
    }

    fn open_append(
        &self,
        failpoint: Failpoint,
        path: &Path,
    ) -> io::Result<Box<dyn StorageFile + Send>> {
        (**self).open_append(failpoint, path)
    }

    fn read(&self, failpoint: Failpoint, path: &Path) -> io::Result<Vec<u8>> {
        (**self).read(failpoint, path)
    }

    fn rename(&self, failpoint: Failpoint, from: &Path, to: &Path) -> io::Result<()> {
        (**self).rename(failpoint, from, to)
    }

    fn remove_file(&self, failpoint: Failpoint, path: &Path) -> io::Result<()> {
        (**self).remove_file(failpoint, path)
    }

    fn sync_dir(&self, failpoint: Failpoint, path: &Path) -> io::Result<()> {
        (**self).sync_dir(failpoint, path)
    }

    fn failpoint(&self, failpoint: Failpoint) -> io::Result<()> {
        (**self).failpoint(failpoint)
    }
}

/// What a scheduled fault does when its operation comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// Fail permanently with `ErrorKind::Other`.
    Fail,
    /// Write a seed-derived prefix of the payload, then fail.
    TornWrite,
    /// Report fsync success without committing anything to durable state.
    SyncLie,
    /// Fail with `ErrorKind::Interrupted` (retryable).
    Transient,
}

#[derive(Debug, Clone)]
struct ScheduledFault {
    failpoint: Failpoint,
    /// 1-based operation index at this failpoint where the fault arms.
    at: u64,
    kind: FaultKind,
    /// How many consecutive operations (from `at`) the fault covers.
    remaining: u32,
}

#[derive(Debug, Default)]
struct Inode {
    /// Volatile content: what readers observe, lost on crash.
    content: Vec<u8>,
    /// Durable content: what survives a crash. `None` until first fsync.
    durable: Option<Vec<u8>>,
}

#[derive(Debug, Default)]
struct FaultyState {
    seed: u64,
    inodes: Vec<Inode>,
    /// Volatile namespace: path → inode, lost on crash.
    live_dir: BTreeMap<PathBuf, usize>,
    /// Durable namespace: survives a crash; updated by directory fsync.
    durable_dir: BTreeMap<PathBuf, usize>,
    faults: Vec<ScheduledFault>,
    ops: BTreeMap<Failpoint, u64>,
}

impl FaultyState {
    /// Count the operation and return the armed fault kind, if any.
    fn begin_op(&mut self, failpoint: Failpoint) -> Option<FaultKind> {
        let count = self.ops.entry(failpoint).or_insert(0);
        *count += 1;
        let count = *count;
        for fault in &mut self.faults {
            if fault.failpoint == failpoint && count >= fault.at && fault.remaining > 0 {
                fault.remaining -= 1;
                return Some(fault.kind);
            }
        }
        None
    }

    fn injected(failpoint: Failpoint, kind: FaultKind) -> io::Error {
        match kind {
            FaultKind::Transient => io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient fault at {failpoint}"),
            ),
            _ => io::Error::other(format!("injected fault at {failpoint}")),
        }
    }
}

/// A deterministic in-memory filesystem with crash semantics and scheduled
/// faults.
///
/// Cloning is cheap and shares state, so a test can keep a handle while the
/// pipeline owns another. The volatile/durable split mirrors a real
/// filesystem: writes mutate volatile content, file fsync commits bytes,
/// directory fsync commits namespace entries, and [`crash`](Self::crash)
/// drops everything volatile.
///
/// All scheduling is seed-driven ([`with_seed`](Self::with_seed)); two runs
/// with the same seed and fault plan observe byte-identical behaviour.
#[derive(Debug, Clone, Default)]
pub struct FaultyFs {
    state: Arc<Mutex<FaultyState>>,
}

impl FaultyFs {
    /// An empty filesystem with seed 0 and no scheduled faults.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty filesystem whose torn-write prefixes derive from `seed`.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        let fs = Self::default();
        fs.lock().seed = seed;
        fs
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultyState> {
        self.state.lock().expect("FaultyFs mutex poisoned")
    }

    /// Schedule the `nth` (1-based) operation at `failpoint` to fail
    /// permanently.
    pub fn fail_nth(&self, failpoint: Failpoint, nth: u64) {
        self.schedule(failpoint, nth, FaultKind::Fail, 1);
    }

    /// Schedule the `nth` (1-based) write at `failpoint` to tear: a
    /// seed-derived prefix of the payload lands in volatile content, then
    /// the write fails.
    pub fn torn_write_nth(&self, failpoint: Failpoint, nth: u64) {
        self.schedule(failpoint, nth, FaultKind::TornWrite, 1);
    }

    /// Schedule the `nth` (1-based) fsync at `failpoint` to lie: report
    /// success without committing anything durable.
    pub fn lie_on_sync_nth(&self, failpoint: Failpoint, nth: u64) {
        self.schedule(failpoint, nth, FaultKind::SyncLie, 1);
    }

    /// Schedule `count` consecutive operations at `failpoint`, starting at
    /// the `nth` (1-based), to fail with retryable `ErrorKind::Interrupted`.
    pub fn transient_nth(&self, failpoint: Failpoint, nth: u64, count: u32) {
        self.schedule(failpoint, nth, FaultKind::Transient, count);
    }

    fn schedule(&self, failpoint: Failpoint, at: u64, kind: FaultKind, remaining: u32) {
        self.lock().faults.push(ScheduledFault {
            failpoint,
            at,
            kind,
            remaining,
        });
    }

    /// Remove all scheduled faults (operation counters are preserved).
    pub fn clear_faults(&self) {
        self.lock().faults.clear();
    }

    /// How many operations have executed at `failpoint` so far.
    #[must_use]
    pub fn op_count(&self, failpoint: Failpoint) -> u64 {
        self.lock().ops.get(failpoint).copied().unwrap_or(0)
    }

    /// Simulate a machine crash: every volatile write and namespace change
    /// is discarded, leaving only fsync-committed state behind.
    ///
    /// Handles held across a crash keep writing into detached inodes, as a
    /// process holding a stale descriptor would; tests drop the pipeline
    /// before crashing.
    pub fn crash(&self) {
        let mut state = self.lock();
        state.live_dir = state.durable_dir.clone();
        for inode in &mut state.inodes {
            inode.content = inode.durable.clone().unwrap_or_default();
        }
    }

    /// Paths currently visible in the (volatile) namespace, sorted.
    #[must_use]
    pub fn live_paths(&self) -> Vec<PathBuf> {
        self.lock().live_dir.keys().cloned().collect()
    }

    /// Read a file's volatile content without counting an operation.
    ///
    /// # Errors
    /// Returns `ErrorKind::NotFound` if the path is absent.
    pub fn peek(&self, path: &Path) -> io::Result<Vec<u8>> {
        let state = self.lock();
        let inode = state
            .live_dir
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        Ok(state.inodes[*inode].content.clone())
    }
}

/// A handle into a [`FaultyFs`] inode.
#[derive(Debug)]
struct FaultyFile {
    fs: FaultyFs,
    inode: usize,
}

impl StorageFile for FaultyFile {
    fn write_all(&mut self, failpoint: Failpoint, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.fs.lock();
        match state.begin_op(failpoint) {
            None | Some(FaultKind::SyncLie) => {
                state.inodes[self.inode].content.extend_from_slice(bytes);
                Ok(())
            }
            Some(FaultKind::TornWrite) => {
                let ops = state.ops.get(failpoint).copied().unwrap_or(0);
                let keep = if bytes.is_empty() {
                    0
                } else {
                    let roll = splitmix64(state.seed ^ hash_name(failpoint) ^ ops);
                    usize::try_from(roll % bytes.len() as u64).unwrap_or(0)
                };
                state.inodes[self.inode]
                    .content
                    .extend_from_slice(&bytes[..keep]);
                Err(io::Error::other(format!(
                    "injected torn write at {failpoint} (kept {keep} of {} bytes)",
                    bytes.len()
                )))
            }
            Some(kind) => Err(FaultyState::injected(failpoint, kind)),
        }
    }

    fn sync_all(&mut self, failpoint: Failpoint) -> io::Result<()> {
        let mut state = self.fs.lock();
        match state.begin_op(failpoint) {
            None => {
                let content = state.inodes[self.inode].content.clone();
                state.inodes[self.inode].durable = Some(content);
                Ok(())
            }
            // The lie: success reported, nothing committed.
            Some(FaultKind::SyncLie) => Ok(()),
            Some(kind) => Err(FaultyState::injected(failpoint, kind)),
        }
    }

    fn set_len(&mut self, failpoint: Failpoint, len: u64) -> io::Result<()> {
        let mut state = self.fs.lock();
        match state.begin_op(failpoint) {
            None | Some(FaultKind::SyncLie) => {
                let len = usize::try_from(len).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidInput, "length exceeds address space")
                })?;
                state.inodes[self.inode].content.resize(len, 0);
                Ok(())
            }
            Some(kind) => Err(FaultyState::injected(failpoint, kind)),
        }
    }

    fn read_to_end(&mut self, failpoint: Failpoint, out: &mut Vec<u8>) -> io::Result<usize> {
        let mut state = self.fs.lock();
        match state.begin_op(failpoint) {
            None | Some(FaultKind::SyncLie) => {
                let content = &state.inodes[self.inode].content;
                out.extend_from_slice(content);
                Ok(content.len())
            }
            Some(kind) => Err(FaultyState::injected(failpoint, kind)),
        }
    }
}

impl StorageBackend for FaultyFs {
    fn create(&self, failpoint: Failpoint, path: &Path) -> io::Result<Box<dyn StorageFile + Send>> {
        let inode = {
            let mut state = self.lock();
            if let Some(kind) = state.begin_op(failpoint) {
                return Err(FaultyState::injected(failpoint, kind));
            }
            let inode = state.inodes.len();
            state.inodes.push(Inode::default());
            state.live_dir.insert(path.to_path_buf(), inode);
            inode
        };
        Ok(Box::new(FaultyFile {
            fs: self.clone(),
            inode,
        }))
    }

    fn open_append(
        &self,
        failpoint: Failpoint,
        path: &Path,
    ) -> io::Result<Box<dyn StorageFile + Send>> {
        let inode = {
            let mut state = self.lock();
            if let Some(kind) = state.begin_op(failpoint) {
                return Err(FaultyState::injected(failpoint, kind));
            }
            if let Some(existing) = state.live_dir.get(path) {
                *existing
            } else {
                let inode = state.inodes.len();
                state.inodes.push(Inode::default());
                state.live_dir.insert(path.to_path_buf(), inode);
                inode
            }
        };
        Ok(Box::new(FaultyFile {
            fs: self.clone(),
            inode,
        }))
    }

    fn read(&self, failpoint: Failpoint, path: &Path) -> io::Result<Vec<u8>> {
        let mut state = self.lock();
        if let Some(kind) = state.begin_op(failpoint) {
            return Err(FaultyState::injected(failpoint, kind));
        }
        let inode = state
            .live_dir
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        Ok(state.inodes[*inode].content.clone())
    }

    fn rename(&self, failpoint: Failpoint, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.lock();
        if let Some(kind) = state.begin_op(failpoint) {
            return Err(FaultyState::injected(failpoint, kind));
        }
        let inode = state
            .live_dir
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        state.live_dir.insert(to.to_path_buf(), inode);
        Ok(())
    }

    fn remove_file(&self, failpoint: Failpoint, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        if let Some(kind) = state.begin_op(failpoint) {
            return Err(FaultyState::injected(failpoint, kind));
        }
        state
            .live_dir
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn sync_dir(&self, failpoint: Failpoint, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        match state.begin_op(failpoint) {
            None => {
                // Commit every namespace entry directly under `path`, and
                // drop durable entries that were renamed or removed away.
                let committed: Vec<(PathBuf, usize)> = state
                    .live_dir
                    .iter()
                    .filter(|(p, _)| p.parent() == Some(path))
                    .map(|(p, inode)| (p.clone(), *inode))
                    .collect();
                state.durable_dir.retain(|p, _| p.parent() != Some(path));
                state.durable_dir.extend(committed);
                Ok(())
            }
            Some(FaultKind::SyncLie) => Ok(()),
            Some(kind) => Err(FaultyState::injected(failpoint, kind)),
        }
    }

    fn failpoint(&self, failpoint: Failpoint) -> io::Result<()> {
        let mut state = self.lock();
        match state.begin_op(failpoint) {
            None | Some(FaultKind::SyncLie) => Ok(()),
            Some(kind) => Err(FaultyState::injected(failpoint, kind)),
        }
    }
}

/// Bounded retry with exponential backoff and deterministic seeded jitter.
///
/// Only transient errors (`Interrupted`, `WouldBlock`, `TimedOut` — the
/// `EAGAIN`/`EINTR` family) are retried; everything else is treated as
/// permanent and surfaces immediately. Jitter derives from
/// `(jitter_seed, failpoint, attempt)` via splitmix64, so two processes
/// with the same seed back off identically — no wall clock or OS
/// randomness enters the persistence path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each subsequent retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Seed for deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 1 ms base delay, 50 ms cap.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            jitter_seed: 0x5354_504d,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    #[must_use]
    pub const fn none() -> Self {
        Self {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// A test-friendly policy: `max_attempts` attempts with zero backoff.
    #[must_use]
    pub const fn immediate(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// Whether an error is transient (worth retrying).
    #[must_use]
    pub fn is_transient(error: &io::Error) -> bool {
        matches!(
            error.kind(),
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    }

    /// The backoff before retry number `attempt` (1-based) at `failpoint`:
    /// exponential growth from `base_delay`, capped at `max_delay`, with
    /// the lower half jittered deterministically.
    #[must_use]
    pub fn backoff(&self, failpoint: Failpoint, attempt: u32) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_delay
            .saturating_mul(1_u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.max_delay);
        let nanos = u64::try_from(capped.as_nanos()).unwrap_or(u64::MAX);
        if nanos == 0 {
            return Duration::ZERO;
        }
        let roll = splitmix64(self.jitter_seed ^ hash_name(failpoint) ^ u64::from(attempt));
        let jittered = nanos / 2 + roll % (nanos / 2 + 1);
        Duration::from_nanos(jittered)
    }

    /// Run `op`, retrying transient failures up to `max_attempts` total
    /// attempts. Every retry increments `retries` (the counter surfaced in
    /// `checkpoint_meta` / `RecoveryReport`) and sleeps the jittered
    /// backoff for its attempt number.
    ///
    /// # Errors
    /// The last error, once attempts are exhausted or a permanent error
    /// occurs.
    pub fn run<T>(
        &self,
        failpoint: Failpoint,
        retries: &mut u64,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0_u32;
        loop {
            attempt += 1;
            match op() {
                Ok(value) => return Ok(value),
                Err(error) if Self::is_transient(&error) && attempt < attempts => {
                    *retries += 1;
                    let delay = self.backoff(failpoint, attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                Err(error) => return Err(error),
            }
        }
    }
}

/// A cap on the live heap footprint of one streaming miner.
///
/// When `StreamingMiner::footprint_bytes()` exceeds the budget after an
/// append, the pipeline spills the miner to a cold file and rehydrates it
/// on the next append. The budget never rejects data; it trades memory for
/// spill I/O, and only a *failed* spill surfaces as
/// `Error::BudgetExceeded`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    max_live_bytes: u64,
}

impl MemoryBudget {
    /// A budget of `max_live_bytes` bytes of live miner state.
    #[must_use]
    pub const fn bytes(max_live_bytes: u64) -> Self {
        Self { max_live_bytes }
    }

    /// The configured cap, in bytes.
    #[must_use]
    pub const fn max_live_bytes(&self) -> u64 {
        self.max_live_bytes
    }

    /// Whether a live footprint of `live_bytes` exceeds the budget.
    #[must_use]
    pub const fn is_exceeded_by(&self, live_bytes: u64) -> bool {
        live_bytes > self.max_live_bytes
    }
}

/// `splitmix64`: the standard 64-bit finalizer-style mixer. Deterministic,
/// dependency-free, and good enough to decorrelate jitter and torn-write
/// prefixes across failpoints.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a failpoint name, used to decorrelate per-failpoint streams.
fn hash_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durable_content_survives_a_crash_and_volatile_does_not() {
        let fs = FaultyFs::new();
        let dir = Path::new("/d");
        let committed = dir.join("committed");
        let volatile = dir.join("volatile");

        let mut file = fs.create("t.create", &committed).unwrap();
        file.write_all("t.write", b"safe").unwrap();
        file.sync_all("t.sync").unwrap();
        fs.sync_dir("t.dir_sync", dir).unwrap();

        let mut file = fs.create("t.create", &volatile).unwrap();
        file.write_all("t.write", b"gone").unwrap();
        // No file or directory fsync for `volatile`.

        fs.crash();
        assert_eq!(fs.peek(&committed).unwrap(), b"safe");
        assert!(fs.peek(&volatile).is_err());
    }

    #[test]
    fn unsynced_directory_entry_is_lost_even_if_file_content_was_synced() {
        let fs = FaultyFs::new();
        let path = Path::new("/d/f");
        let mut file = fs.create("t.create", path).unwrap();
        file.write_all("t.write", b"bytes").unwrap();
        file.sync_all("t.sync").unwrap();
        // Content is durable but the namespace entry is not.
        fs.crash();
        assert!(fs.peek(path).is_err());
    }

    #[test]
    fn rename_is_volatile_until_directory_sync() {
        let fs = FaultyFs::new();
        let dir = Path::new("/d");
        let tmp = dir.join("f.tmp");
        let dst = dir.join("f");

        let mut file = fs.create("t.create", &tmp).unwrap();
        file.write_all("t.write", b"payload").unwrap();
        file.sync_all("t.sync").unwrap();
        fs.sync_dir("t.dir_sync", dir).unwrap();

        fs.rename("t.rename", &tmp, &dst).unwrap();
        fs.crash();
        // Rename was not committed: the tmp name is what survives.
        assert_eq!(fs.peek(&tmp).unwrap(), b"payload");
        assert!(fs.peek(&dst).is_err());

        fs.rename("t.rename", &tmp, &dst).unwrap();
        fs.sync_dir("t.dir_sync", dir).unwrap();
        fs.crash();
        assert_eq!(fs.peek(&dst).unwrap(), b"payload");
        assert!(fs.peek(&tmp).is_err());
    }

    #[test]
    fn fail_nth_arms_on_the_exact_operation() {
        let fs = FaultyFs::new();
        fs.fail_nth("t.write", 2);
        let mut file = fs.create("t.create", Path::new("/f")).unwrap();
        assert!(file.write_all("t.write", b"a").is_ok());
        let err = file.write_all("t.write", b"b").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(file.write_all("t.write", b"c").is_ok());
        assert_eq!(fs.op_count("t.write"), 3);
    }

    #[test]
    fn torn_write_keeps_a_proper_prefix_and_fails() {
        let fs = FaultyFs::with_seed(7);
        fs.torn_write_nth("t.write", 1);
        let path = Path::new("/f");
        let mut file = fs.create("t.create", path).unwrap();
        let payload = b"0123456789";
        assert!(file.write_all("t.write", payload).is_err());
        let kept = fs.peek(path).unwrap();
        assert!(kept.len() < payload.len());
        assert_eq!(&payload[..kept.len()], &kept[..]);
    }

    #[test]
    fn torn_write_prefix_is_deterministic_per_seed() {
        let lengths: Vec<usize> = [7, 7, 8]
            .iter()
            .map(|&seed| {
                let fs = FaultyFs::with_seed(seed);
                fs.torn_write_nth("t.write", 1);
                let mut file = fs.create("t.create", Path::new("/f")).unwrap();
                let _ = file.write_all("t.write", &[0_u8; 4096]);
                fs.peek(Path::new("/f")).unwrap().len()
            })
            .collect();
        assert_eq!(lengths[0], lengths[1]);
    }

    #[test]
    fn lying_sync_reports_success_but_commits_nothing() {
        let fs = FaultyFs::new();
        fs.lie_on_sync_nth("t.sync", 1);
        let dir = Path::new("/d");
        let path = dir.join("f");
        let mut file = fs.create("t.create", &path).unwrap();
        file.write_all("t.write", b"lost").unwrap();
        assert!(file.sync_all("t.sync").is_ok());
        fs.sync_dir("t.dir_sync", dir).unwrap();
        fs.crash();
        // The namespace entry survived (dir sync was honest) but content
        // was never committed.
        assert_eq!(fs.peek(&path).unwrap(), b"");
    }

    #[test]
    fn transient_faults_are_interrupted_and_bounded() {
        let fs = FaultyFs::new();
        fs.transient_nth("t.write", 1, 2);
        let mut file = fs.create("t.create", Path::new("/f")).unwrap();
        for _ in 0..2 {
            let err = file.write_all("t.write", b"x").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        }
        assert!(file.write_all("t.write", b"x").is_ok());
    }

    #[test]
    fn retry_policy_retries_transient_and_counts() {
        let fs = FaultyFs::new();
        fs.transient_nth("t.write", 1, 2);
        let mut file = fs.create("t.create", Path::new("/f")).unwrap();
        let policy = RetryPolicy::immediate(3);
        let mut retries = 0;
        policy
            .run("t.write", &mut retries, || file.write_all("t.write", b"x"))
            .unwrap();
        assert_eq!(retries, 2);
        assert_eq!(fs.peek(Path::new("/f")).unwrap(), b"x");
    }

    #[test]
    fn retry_policy_gives_up_after_max_attempts() {
        let fs = FaultyFs::new();
        fs.transient_nth("t.write", 1, 10);
        let mut file = fs.create("t.create", Path::new("/f")).unwrap();
        let policy = RetryPolicy::immediate(3);
        let mut retries = 0;
        let err = policy
            .run("t.write", &mut retries, || file.write_all("t.write", b"x"))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(retries, 2);
    }

    #[test]
    fn retry_policy_does_not_retry_permanent_errors() {
        let fs = FaultyFs::new();
        fs.fail_nth("t.write", 1);
        let mut file = fs.create("t.create", Path::new("/f")).unwrap();
        let mut retries = 0;
        let err = RetryPolicy::default()
            .run("t.write", &mut retries, || file.write_all("t.write", b"x"))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(retries, 0);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            jitter_seed: 42,
        };
        let a1 = policy.backoff("fp", 1);
        let a1_again = policy.backoff("fp", 1);
        assert_eq!(a1, a1_again);
        // Jitter stays within [cap/2, cap].
        for attempt in 1..=8 {
            let d = policy.backoff("fp", attempt);
            assert!(d <= Duration::from_millis(4));
            assert!(d >= Duration::from_micros(500));
        }
        assert_eq!(RetryPolicy::none().backoff("fp", 3), Duration::ZERO);
    }

    #[test]
    fn memory_budget_compares_strictly() {
        let budget = MemoryBudget::bytes(100);
        assert!(!budget.is_exceeded_by(100));
        assert!(budget.is_exceeded_by(101));
        assert_eq!(budget.max_live_bytes(), 100);
    }

    #[test]
    fn failpoint_registry_is_unique_and_nonempty() {
        let mut names: Vec<&str> = failpoints::ALL.to_vec();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(before >= 18);
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn real_fs_round_trips_through_the_trait() {
        let dir = std::env::temp_dir().join("stpm_fault_realfs_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f");
        let fs = RealFs;
        let mut file = fs.create("t.create", &path).unwrap();
        file.write_all("t.write", b"bytes").unwrap();
        file.sync_all("t.sync").unwrap();
        drop(file);
        assert_eq!(fs.read("t.read", &path).unwrap(), b"bytes");
        let moved = dir.join("g");
        fs.rename("t.rename", &path, &moved).unwrap();
        fs.sync_dir("t.dir_sync", &dir).unwrap();
        let mut out = Vec::new();
        fs.open_append("t.open", &moved)
            .unwrap()
            .read_to_end("t.read", &mut out)
            .unwrap();
        assert_eq!(out, b"bytes");
        fs.remove_file("t.remove", &moved).unwrap();
        assert_eq!(
            fs.read("t.read", &moved).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
