//! The engine-agnostic mining API: [`MiningEngine`], [`MiningInput`] and the
//! unified [`EngineReport`].
//!
//! The paper evaluates three contenders — exact E-STPM, approximate A-STPM
//! and the APS-growth baseline — over one shared data-transformation
//! substrate. This module is the seam that lets callers (the facade
//! `Pipeline`, the benchmark harness, integration tests) treat them, and any
//! future engine, uniformly:
//!
//! * [`MiningInput`] bundles the two databases of the pipeline (`D_SYB` and
//!   `D_SEQ`) plus the sequence-mapping factor, because engines differ in
//!   which representation they consume: E-STPM and APS-growth mine `D_SEQ`
//!   directly, while A-STPM prunes series from `D_SYB` *before* the sequence
//!   mapping.
//! * [`EngineReport`] subsumes the per-engine report types of earlier
//!   revisions (`MiningReport` alone, `AStpmReport`, `ApsGrowthReport`): the
//!   mined patterns, the registry they should be displayed against, named
//!   per-phase timings, a pruning summary, and a memory estimate.
//! * [`accuracy`] compares any two engine reports the way the paper's
//!   Tables VII/XII do, with no knowledge of which engines produced them.

use crate::config::{ResolvedConfig, StpmConfig};
use crate::error::Result;
use crate::pattern::TemporalPattern;
use crate::report::{MinedEvent, MinedPattern, MiningReport, MiningStats};
use std::collections::BTreeSet;
use std::time::Duration;
use stpm_timeseries::{EventRegistry, SequenceDatabase, SeriesId, SymbolicDatabase};

/// Canonical phase names used by the built-in engines. Custom engines may
/// report any phase names they like; these constants exist so that generic
/// consumers (benchmarks, tables) can pick out the common ones.
pub mod phases {
    /// Mutual-information / µ-threshold computation (A-STPM).
    pub const MI: &str = "mi";
    /// Frequent seasonal single-event mining.
    pub const SINGLE_EVENTS: &str = "single-events";
    /// Frequent seasonal k-event pattern mining.
    pub const PATTERNS: &str = "patterns";
    /// Periodic-frequent itemset mining (APS-growth phase 1).
    pub const ITEMSETS: &str = "itemsets";
    /// Temporal-pattern extraction from itemsets (APS-growth phase 2).
    pub const EXTRACTION: &str = "extraction";
    /// Incremental granule absorption (streaming miner, cumulative).
    pub const APPEND: &str = "append";
    /// Checkpoint emission: frequency gate + season materialisation
    /// (streaming miner).
    pub const EMIT: &str = "emit";
}

/// The input every [`MiningEngine`] mines: the symbolic database `D_SYB`, the
/// temporal sequence database `D_SEQ` derived from it, and the sequence
/// mapping factor `m` that links the two.
#[derive(Debug, Clone, Copy)]
pub struct MiningInput<'a> {
    dsyb: &'a SymbolicDatabase,
    dseq: &'a SequenceDatabase,
    mapping_factor: u64,
}

impl<'a> MiningInput<'a> {
    /// Bundles the two databases of the data-transformation phase.
    ///
    /// # Panics
    /// Panics when the bundle is inconsistent — `dseq` was not derived from
    /// `dsyb` with `mapping_factor` (different mapping factor or series
    /// count). An inconsistent bundle would make engines that re-map `D_SYB`
    /// (A-STPM) silently mine a different database than engines that consume
    /// `D_SEQ` directly, so it is rejected at construction.
    #[must_use]
    pub fn new(
        dsyb: &'a SymbolicDatabase,
        dseq: &'a SequenceDatabase,
        mapping_factor: u64,
    ) -> Self {
        assert_eq!(
            dseq.mapping_factor(),
            mapping_factor,
            "MiningInput: dseq was built with mapping factor {}, not {mapping_factor}",
            dseq.mapping_factor()
        );
        assert_eq!(
            dseq.num_series(),
            dsyb.num_series(),
            "MiningInput: dseq covers {} series but dsyb has {}",
            dseq.num_series(),
            dsyb.num_series()
        );
        Self {
            dsyb,
            dseq,
            mapping_factor,
        }
    }

    /// The symbolic database `D_SYB`.
    #[must_use]
    pub fn dsyb(&self) -> &'a SymbolicDatabase {
        self.dsyb
    }

    /// The temporal sequence database `D_SEQ`.
    #[must_use]
    pub fn dseq(&self) -> &'a SequenceDatabase {
        self.dseq
    }

    /// The sequence-mapping factor `m` (`D_SYB` instants per `D_SEQ`
    /// granule).
    #[must_use]
    pub fn mapping_factor(&self) -> u64 {
        self.mapping_factor
    }

    /// Number of granules of `D_SEQ` — the size every fractional threshold is
    /// resolved against.
    #[must_use]
    pub fn num_granules(&self) -> u64 {
        self.dseq.num_granules()
    }
}

/// One named, timed phase of an engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Phase name (see [`phases`] for the canonical ones).
    pub name: &'static str,
    /// Wall-clock time spent in the phase.
    pub time: Duration,
}

impl PhaseTiming {
    /// Creates a named timing.
    #[must_use]
    pub fn new(name: &'static str, time: Duration) -> Self {
        Self { name, time }
    }
}

/// What an engine discarded before or while mining. All counters refer to the
/// *original* (un-projected) database.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PruningSummary {
    /// Series kept for mining (ids of the original database).
    pub kept_series: Vec<SeriesId>,
    /// Series pruned before mining.
    pub pruned_series: Vec<SeriesId>,
    /// Total series of the original database.
    pub total_series: usize,
    /// Events (symbol labels) pruned together with their series.
    pub pruned_events: usize,
    /// Total events of the original database.
    pub total_events: usize,
    /// Candidate itemsets produced by a phase-1 pre-mining step (APS-growth);
    /// zero for engines without one.
    pub candidate_itemsets: usize,
}

impl PruningSummary {
    /// A summary for an engine that mines the whole database.
    #[must_use]
    pub fn keep_all(input: &MiningInput<'_>) -> Self {
        let total_series = input.dsyb().num_series();
        Self {
            kept_series: (0..total_series)
                .map(|i| SeriesId(u32::try_from(i).expect("series fits u32")))
                .collect(),
            pruned_series: Vec::new(),
            total_series,
            pruned_events: 0,
            total_events: input.dsyb().registry().num_events(),
            candidate_itemsets: 0,
        }
    }

    /// Fraction of time series pruned, in percent (Table XI of the paper).
    #[must_use]
    pub fn pruned_series_pct(&self) -> f64 {
        if self.total_series == 0 {
            0.0
        } else {
            100.0 * self.pruned_series.len() as f64 / self.total_series as f64
        }
    }

    /// Fraction of events pruned, in percent (Table XI of the paper).
    #[must_use]
    pub fn pruned_events_pct(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            100.0 * self.pruned_events as f64 / self.total_events as f64
        }
    }
}

/// The unified output of every mining engine: the frequent seasonal events
/// and patterns, the registry to display them against, per-phase timings, a
/// pruning summary and a memory estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    engine: &'static str,
    report: MiningReport,
    registry: EventRegistry,
    phases: Vec<PhaseTiming>,
    pruning: PruningSummary,
    memory_bytes: usize,
}

impl EngineReport {
    /// Assembles a report.
    #[must_use]
    pub fn new(
        engine: &'static str,
        report: MiningReport,
        registry: EventRegistry,
        phases: Vec<PhaseTiming>,
        pruning: PruningSummary,
        memory_bytes: usize,
    ) -> Self {
        Self {
            engine,
            report,
            registry,
            phases,
            pruning,
            memory_bytes,
        }
    }

    /// Name of the engine that produced the report.
    #[must_use]
    pub fn engine(&self) -> &'static str {
        self.engine
    }

    /// The underlying mining report (events, patterns, run statistics).
    #[must_use]
    pub fn report(&self) -> &MiningReport {
        &self.report
    }

    /// Consumes the report and returns the underlying [`MiningReport`].
    #[must_use]
    pub fn into_report(self) -> MiningReport {
        self.report
    }

    /// Registry the mined labels refer to. For engines that project the
    /// database (A-STPM) this is the registry of the *projected* database.
    #[must_use]
    pub fn registry(&self) -> &EventRegistry {
        &self.registry
    }

    /// The frequent seasonal single events.
    #[must_use]
    pub fn events(&self) -> &[MinedEvent] {
        self.report.events()
    }

    /// The frequent seasonal temporal patterns (k ≥ 2).
    #[must_use]
    pub fn patterns(&self) -> &[MinedPattern] {
        self.report.patterns()
    }

    /// Run statistics of the underlying miner.
    #[must_use]
    pub fn stats(&self) -> &MiningStats {
        self.report.stats()
    }

    /// Total number of frequent seasonal patterns, counting single events.
    #[must_use]
    pub fn total_patterns(&self) -> usize {
        self.report.total_patterns()
    }

    /// Total `classify_relation` calls the run avoided through the level-2
    /// verdict table (zero for engines without the reuse machinery).
    #[must_use]
    pub fn classifier_calls_saved(&self) -> usize {
        self.report.stats().total_classifier_calls_saved()
    }

    /// Total extension candidates the run pruned through the level-2
    /// adjacency matrix before any support work (zero for engines without
    /// the reuse machinery).
    #[must_use]
    pub fn adjacency_pruned_candidates(&self) -> usize {
        self.report.stats().total_adjacency_pruned_candidates()
    }

    /// Whether a structurally identical pattern was found.
    #[must_use]
    pub fn contains_pattern(&self, pattern: &TemporalPattern) -> bool {
        self.report.contains_pattern(pattern)
    }

    /// The named phase timings, in execution order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseTiming] {
        &self.phases
    }

    /// Time spent in the named phase ([`Duration::ZERO`] when the engine has
    /// no such phase).
    #[must_use]
    pub fn phase_time(&self, name: &str) -> Duration {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.time)
            .sum()
    }

    /// Total wall-clock time across all phases.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.phases.iter().map(|p| p.time).sum()
    }

    /// What the engine pruned before or while mining.
    #[must_use]
    pub fn pruning(&self) -> &PruningSummary {
        &self.pruning
    }

    /// Estimated peak heap footprint of the engine's data structures, in
    /// bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Memory estimate in mebibytes (convenience for table output).
    #[must_use]
    pub fn memory_mib(&self) -> f64 {
        self.memory_bytes as f64 / (1024.0 * 1024.0)
    }

    /// The human-readable renderings of every mined event and pattern.
    /// Rendering through the report's own registry makes outputs produced
    /// over different (projected) databases comparable.
    #[must_use]
    pub fn pattern_set(&self) -> BTreeSet<String> {
        self.report
            .events()
            .iter()
            .map(|e| self.registry.display(e.label))
            .chain(
                self.report
                    .patterns()
                    .iter()
                    .map(|p| p.pattern().display(&self.registry)),
            )
            .collect()
    }
}

/// Accuracy of a (possibly approximate) result w.r.t. a reference result, in
/// percent: the fraction of the reference's frequent seasonal patterns
/// (events and k-event patterns) that the other run also found. An empty
/// reference counts as 100%.
#[must_use]
pub fn accuracy(reference: &EngineReport, other: &EngineReport) -> f64 {
    let reference_set = reference.pattern_set();
    if reference_set.is_empty() {
        return 100.0;
    }
    let other_set = other.pattern_set();
    let hit = reference_set.intersection(&other_set).count();
    100.0 * hit as f64 / reference_set.len() as f64
}

/// A seasonal-temporal-pattern mining engine.
///
/// Implementations are lightweight, data-free values (engine configuration
/// such as A-STPM's µ override lives on the implementing struct); the data
/// arrives per call through [`MiningInput`]. This is what lets the facade
/// `Pipeline`, the benchmark harness and the agreement tests run E-STPM,
/// A-STPM, APS-growth — or any future engine — through one code path.
pub trait MiningEngine {
    /// Short display name of the engine ("E-STPM", "A-STPM", "APS-growth").
    fn name(&self) -> &'static str;

    /// Mines the input under an already-resolved configuration.
    ///
    /// # Errors
    /// Propagates data-transformation errors (e.g. a failed projection) and
    /// internal configuration errors.
    fn mine(&self, input: &MiningInput<'_>, config: &ResolvedConfig) -> Result<EngineReport>;

    /// Convenience wrapper: resolves `config` against the input's `D_SEQ`
    /// size, then mines.
    ///
    /// # Errors
    /// Propagates configuration-validation errors in addition to
    /// [`MiningEngine::mine`]'s errors.
    fn mine_with(&self, input: &MiningInput<'_>, config: &StpmConfig) -> Result<EngineReport> {
        let resolved = config.resolve(input.num_granules())?;
        self.mine(input, &resolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn report(engine: &'static str, phases: Vec<PhaseTiming>) -> EngineReport {
        EngineReport::new(
            engine,
            MiningReport::default(),
            EventRegistry::new(),
            phases,
            PruningSummary::default(),
            64,
        )
    }

    #[test]
    fn phase_times_sum_and_lookup() {
        let r = report(
            "X",
            vec![
                PhaseTiming::new(phases::MI, Duration::from_millis(3)),
                PhaseTiming::new(phases::PATTERNS, Duration::from_millis(7)),
            ],
        );
        assert_eq!(r.phase_time(phases::MI), Duration::from_millis(3));
        assert_eq!(r.phase_time("nonexistent"), Duration::ZERO);
        assert_eq!(r.total_time(), Duration::from_millis(10));
        assert_eq!(r.engine(), "X");
        assert!((r.memory_mib() - 64.0 / 1024.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_of_empty_reference_is_100() {
        let a = report("A", Vec::new());
        let b = report("B", Vec::new());
        assert!((accuracy(&a, &b) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn pruning_summary_percentages() {
        let summary = PruningSummary {
            kept_series: vec![SeriesId(0)],
            pruned_series: vec![SeriesId(1), SeriesId(2), SeriesId(3)],
            total_series: 4,
            pruned_events: 6,
            total_events: 8,
            candidate_itemsets: 0,
        };
        assert!((summary.pruned_series_pct() - 75.0).abs() < 1e-12);
        assert!((summary.pruned_events_pct() - 75.0).abs() < 1e-12);
        assert_eq!(PruningSummary::default().pruned_series_pct(), 0.0);
        assert_eq!(PruningSummary::default().pruned_events_pct(), 0.0);
    }
}
