//! Support sets (Definition 3.12) and the sorted-set primitives the miner
//! relies on.
//!
//! A support set is the sorted list of granule positions (in `H`) where an
//! event, an event group or a pattern occurs. Keeping them sorted makes the
//! intersection used when growing event groups a linear merge.

use stpm_timeseries::GranulePos;

/// A support set: sorted, duplicate-free granule positions.
pub type SupportSet = Vec<GranulePos>;

/// Intersects two sorted support sets (the `SUP(E_1,…,E_{k-1}) ∩ SUP(E_k)`
/// step of Section IV-D 4.1).
#[must_use]
pub fn intersect(a: &[GranulePos], b: &[GranulePos]) -> SupportSet {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Unions two sorted support sets (used when merging per-relation supports
/// back into a group-level support).
#[must_use]
pub fn union(a: &[GranulePos], b: &[GranulePos]) -> SupportSet {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Inserts a granule keeping the set sorted and duplicate-free. Appending in
/// increasing order (the common case during the single database scan) is
/// O(1).
pub fn insert_sorted(set: &mut SupportSet, granule: GranulePos) {
    match set.last() {
        None => set.push(granule),
        Some(last) if *last < granule => set.push(granule),
        Some(last) if *last == granule => {}
        _ => {
            if let Err(pos) = set.binary_search(&granule) {
                set.insert(pos, granule);
            }
        }
    }
}

/// Relative support of a support set in a database of `dseq_len` granules.
#[must_use]
pub fn relative_support(set: &[GranulePos], dseq_len: u64) -> f64 {
    if dseq_len == 0 {
        0.0
    } else {
        set.len() as f64 / dseq_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_of_sorted_sets() {
        assert_eq!(intersect(&[1, 2, 3, 7, 8], &[2, 3, 4, 8, 9]), vec![2, 3, 8]);
        assert_eq!(intersect(&[1, 2], &[3, 4]), Vec::<u64>::new());
        assert_eq!(intersect(&[], &[1, 2]), Vec::<u64>::new());
        assert_eq!(intersect(&[1, 2, 3], &[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn union_of_sorted_sets() {
        assert_eq!(union(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union(&[], &[1]), vec![1]);
        assert_eq!(union(&[1], &[]), vec![1]);
        assert_eq!(union(&[], &[]), Vec::<u64>::new());
    }

    #[test]
    fn insert_sorted_keeps_invariants() {
        let mut set = vec![];
        insert_sorted(&mut set, 5);
        insert_sorted(&mut set, 7);
        insert_sorted(&mut set, 7);
        insert_sorted(&mut set, 3);
        insert_sorted(&mut set, 6);
        insert_sorted(&mut set, 3);
        assert_eq!(set, vec![3, 5, 6, 7]);
    }

    #[test]
    fn relative_support_bounds() {
        assert!((relative_support(&[1, 2, 3], 10) - 0.3).abs() < 1e-12);
        assert_eq!(relative_support(&[1, 2], 0), 0.0);
        assert_eq!(relative_support(&[], 10), 0.0);
    }
}
