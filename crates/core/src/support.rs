//! Support sets (Definition 3.12) and the sorted-set / bitset primitives the
//! miner relies on.
//!
//! A support set is the sorted list of granule positions (in `H`) where an
//! event, an event group or a pattern occurs. Keeping them sorted makes the
//! intersection used when growing event groups a linear merge.
//!
//! The bitset primitives ([`intersect_rows_into`], [`iter_set_bits`]) back
//! the level-2 relation adjacency matrix of
//! [`RelationAdjacency`](crate::hlh::RelationAdjacency): the extension set of
//! a (k−1)-group is the bitwise AND of its members' neighbor rows, walked as
//! set bits.

use stpm_timeseries::GranulePos;

/// A support set: sorted, duplicate-free granule positions.
pub type SupportSet = Vec<GranulePos>;

/// Size ratio beyond which the intersection routines switch from the linear
/// merge to galloping (exponential-probe) advance on the longer side. With a
/// ratio `r >= GALLOP_RATIO` the galloping cost `O(short · log r)` beats the
/// merge cost `O(short + long)`.
const GALLOP_RATIO: usize = 32;

/// First index `>= lo` whose value is not less than `target`, found by
/// galloping: probe at exponentially growing offsets, then binary-search the
/// bracketed window. `O(log distance)` instead of `O(distance)`.
// lint: hot-path
#[inline]
fn gallop(haystack: &[GranulePos], lo: usize, target: GranulePos) -> usize {
    let mut base = lo;
    let mut step = 1usize;
    while base + step < haystack.len() && haystack[base + step] < target {
        base += step;
        step <<= 1;
    }
    let hi = (base + step).min(haystack.len());
    base + haystack[base..hi].partition_point(|&v| v < target)
}

/// Whether the size skew between two sets puts the intersection in the
/// galloping regime (walk the short side, exponential-probe the long one)
/// rather than the linear-merge regime the SIMD kernels cover.
#[inline]
fn gallop_regime(a: &[GranulePos], b: &[GranulePos]) -> bool {
    let (short, long) = if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    short * GALLOP_RATIO <= long
}

/// The galloping intersection core both public variants monomorphize over:
/// reports every common value through `on_match(value, pos_in_a, pos_in_b)`.
/// Only called in the [`gallop_regime`]; the balanced linear-merge regime
/// goes through the [`crate::simd`] kernel dispatch instead, so this path
/// stays scalar by design (galloping is branch-and-probe bound, with no
/// profitable vector form).
// lint: hot-path
#[inline]
fn intersect_gallop<F: FnMut(GranulePos, usize, usize)>(
    a: &[GranulePos],
    b: &[GranulePos],
    mut on_match: F,
) {
    let a_short = a.len() <= b.len();
    let (short, long) = if a_short { (a, b) } else { (b, a) };
    let mut j = 0usize;
    for (i, &x) in short.iter().enumerate() {
        j = gallop(long, j, x);
        if j == long.len() {
            break;
        }
        if long[j] == x {
            if a_short {
                on_match(x, i, j);
            } else {
                on_match(x, j, i);
            }
            j += 1;
        }
    }
}

/// Intersects two sorted support sets (the `SUP(E_1,…,E_{k-1}) ∩ SUP(E_k)`
/// step of Section IV-D 4.1).
#[must_use]
pub fn intersect(a: &[GranulePos], b: &[GranulePos]) -> SupportSet {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_into(&mut out, a, b);
    out
}

/// Intersects two sorted support sets into `out`, clearing it first — the
/// allocation-free form the miner threads its per-shard scratch buffers
/// through. When one side is at least `GALLOP_RATIO` (32) times longer than
/// the other, the shorter side is walked and the longer side is advanced by
/// galloping; otherwise the linear merge runs through the process-wide
/// [`crate::simd`] kernel dispatch (AVX2 4×4 block compare where detected,
/// scalar twin otherwise — byte-identical output either way).
// lint: hot-path
pub fn intersect_into(out: &mut SupportSet, a: &[GranulePos], b: &[GranulePos]) {
    out.clear();
    if gallop_regime(a, b) {
        intersect_gallop(a, b, |x, _, _| out.push(x));
    } else {
        crate::simd::kernels().intersect(a, b, out);
    }
}

/// Intersects two sorted support sets into `out` while also recording, for
/// every match, its position in `a` (`pos_a`) and in `b` (`pos_b`). All
/// three buffers are cleared first and reused across calls. The positions
/// let the miner reach granule-aligned side data (instance slices in
/// `HLH_1`, binding slices in `HLH_k`) with plain offset lookups instead of
/// one binary search per matched granule. Galloping kicks in on skewed
/// sizes exactly as in [`intersect_into`]; the balanced regime dispatches
/// to the [`crate::simd`] kernels.
// lint: hot-path
pub fn intersect_positions_into(
    a: &[GranulePos],
    b: &[GranulePos],
    out: &mut SupportSet,
    pos_a: &mut Vec<u32>,
    pos_b: &mut Vec<u32>,
) {
    out.clear();
    pos_a.clear();
    pos_b.clear();
    if gallop_regime(a, b) {
        intersect_gallop(a, b, |x, i, j| {
            out.push(x);
            pos_a.push(u32::try_from(i).expect("support position fits u32"));
            pos_b.push(u32::try_from(j).expect("support position fits u32"));
        });
    } else {
        crate::simd::kernels().intersect_positions(a, b, out, pos_a, pos_b);
    }
}

/// Unions two sorted support sets (used when merging per-relation supports
/// back into a group-level support).
#[must_use]
pub fn union(a: &[GranulePos], b: &[GranulePos]) -> SupportSet {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Inserts a granule keeping the set sorted and duplicate-free. Appending in
/// increasing order (the common case during the single database scan) is
/// O(1).
// lint: hot-path
pub fn insert_sorted(set: &mut SupportSet, granule: GranulePos) {
    match set.last() {
        None => set.push(granule),
        Some(last) if *last < granule => set.push(granule),
        Some(last) if *last == granule => {}
        _ => {
            if let Err(pos) = set.binary_search(&granule) {
                set.insert(pos, granule);
            }
        }
    }
}

/// Bitwise-AND intersection of equal-length bitset rows into `out`, clearing
/// it first. With no rows the output is empty; one row is copied verbatim.
/// This is the one-pass replacement for probing `has_relation_between` per
/// group member: the surviving bits of the AND are exactly the events related
/// to *every* member.
///
/// # Panics
/// Panics (in debug builds) when the rows differ in length.
// lint: hot-path
pub fn intersect_rows_into(out: &mut Vec<u64>, rows: &[&[u64]]) {
    out.clear();
    let Some((first, rest)) = rows.split_first() else {
        return;
    };
    out.extend_from_slice(first);
    let kernels = crate::simd::kernels();
    for row in rest {
        debug_assert_eq!(row.len(), out.len(), "bitset rows must share a length");
        kernels.and_words(out, row);
    }
}

/// Iterates the indices of the set bits of a bitset, lowest first, starting
/// at bit `from`. Bit `i` is bit `i % 64` of word `i / 64`.
// lint: hot-path
pub fn iter_set_bits(words: &[u64], from: usize) -> impl Iterator<Item = usize> + '_ {
    let mut word_idx = from / 64;
    let mut current = if word_idx < words.len() {
        words[word_idx] & (!0u64 << (from % 64))
    } else {
        0
    };
    std::iter::from_fn(move || loop {
        if current != 0 {
            let bit = current.trailing_zeros() as usize;
            current &= current - 1;
            return Some(word_idx * 64 + bit);
        }
        word_idx += 1;
        if word_idx >= words.len() {
            return None;
        }
        current = words[word_idx];
    })
}

/// Relative support of a support set in a database of `dseq_len` granules.
#[must_use]
pub fn relative_support(set: &[GranulePos], dseq_len: u64) -> f64 {
    if dseq_len == 0 {
        0.0
    } else {
        set.len() as f64 / dseq_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_of_sorted_sets() {
        assert_eq!(intersect(&[1, 2, 3, 7, 8], &[2, 3, 4, 8, 9]), vec![2, 3, 8]);
        assert_eq!(intersect(&[1, 2], &[3, 4]), Vec::<u64>::new());
        assert_eq!(intersect(&[], &[1, 2]), Vec::<u64>::new());
        assert_eq!(intersect(&[1, 2, 3], &[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn intersect_into_reuses_the_buffer() {
        let mut out = vec![99, 98, 97];
        intersect_into(&mut out, &[1, 2, 3, 7, 8], &[2, 3, 4, 8, 9]);
        assert_eq!(out, vec![2, 3, 8]);
        intersect_into(&mut out, &[1, 2], &[3, 4]);
        assert!(out.is_empty());
    }

    #[test]
    fn galloping_intersection_matches_linear_merge() {
        // One side far more than GALLOP_RATIO times longer than the other.
        let long: Vec<u64> = (0..10_000).map(|i| i * 3).collect();
        let short = vec![0, 2, 3, 2_997, 14_000, 29_997, 29_998];
        let expected = vec![0, 3, 2_997, 29_997];
        let mut out = Vec::new();
        intersect_into(&mut out, &short, &long);
        assert_eq!(out, expected);
        intersect_into(&mut out, &long, &short);
        assert_eq!(out, expected);
        // An empty short side short-circuits.
        intersect_into(&mut out, &[], &long);
        assert!(out.is_empty());
    }

    #[test]
    fn positions_point_back_into_both_inputs() {
        let a = vec![1, 2, 3, 7, 8, 20];
        let b = vec![2, 3, 4, 8, 9];
        let (mut out, mut pos_a, mut pos_b) = (Vec::new(), Vec::new(), Vec::new());
        intersect_positions_into(&a, &b, &mut out, &mut pos_a, &mut pos_b);
        assert_eq!(out, vec![2, 3, 8]);
        assert_eq!(pos_a, vec![1, 2, 4]);
        assert_eq!(pos_b, vec![0, 1, 3]);
        for (m, &g) in out.iter().enumerate() {
            assert_eq!(a[pos_a[m] as usize], g);
            assert_eq!(b[pos_b[m] as usize], g);
        }
        // The same invariant holds in the galloping regime, on either side.
        let long: Vec<u64> = (0..4_000).map(|i| i * 2).collect();
        let short = vec![1, 2, 1_000, 7_998];
        for (x, y) in [(&short, &long), (&long, &short)] {
            intersect_positions_into(x, y, &mut out, &mut pos_a, &mut pos_b);
            assert_eq!(out, vec![2, 1_000, 7_998]);
            for (m, &g) in out.iter().enumerate() {
                assert_eq!(x[pos_a[m] as usize], g);
                assert_eq!(y[pos_b[m] as usize], g);
            }
        }
    }

    #[test]
    fn union_of_sorted_sets() {
        assert_eq!(union(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union(&[], &[1]), vec![1]);
        assert_eq!(union(&[1], &[]), vec![1]);
        assert_eq!(union(&[], &[]), Vec::<u64>::new());
    }

    #[test]
    fn insert_sorted_keeps_invariants() {
        let mut set = vec![];
        insert_sorted(&mut set, 5);
        insert_sorted(&mut set, 7);
        insert_sorted(&mut set, 7);
        insert_sorted(&mut set, 3);
        insert_sorted(&mut set, 6);
        insert_sorted(&mut set, 3);
        assert_eq!(set, vec![3, 5, 6, 7]);
    }

    #[test]
    fn bitset_row_intersection_and_iteration() {
        let a = [0b1011u64, u64::MAX];
        let b = [0b1110u64, 1 << 63];
        let mut out = Vec::new();
        intersect_rows_into(&mut out, &[&a, &b]);
        assert_eq!(out, vec![0b1010, 1 << 63]);
        assert_eq!(iter_set_bits(&out, 0).collect::<Vec<_>>(), vec![1, 3, 127]);
        assert_eq!(iter_set_bits(&out, 2).collect::<Vec<_>>(), vec![3, 127]);
        assert_eq!(iter_set_bits(&out, 4).collect::<Vec<_>>(), vec![127]);
        assert_eq!(iter_set_bits(&out, 128).count(), 0);
        // Single row copies; empty row list clears.
        intersect_rows_into(&mut out, &[&a]);
        assert_eq!(out, a.to_vec());
        intersect_rows_into(&mut out, &[]);
        assert!(out.is_empty());
        assert_eq!(iter_set_bits(&out, 0).count(), 0);
        // A word-boundary start index must not mask the wrong word.
        let c = [0u64, 0b101u64];
        assert_eq!(iter_set_bits(&c, 64).collect::<Vec<_>>(), vec![64, 66]);
        assert_eq!(iter_set_bits(&c, 65).collect::<Vec<_>>(), vec![66]);
    }

    #[test]
    fn relative_support_bounds() {
        assert!((relative_support(&[1, 2, 3], 10) - 0.3).abs() < 1e-12);
        assert_eq!(relative_support(&[1, 2], 0), 0.0);
        assert_eq!(relative_support(&[], 10), 0.0);
    }
}
