//! The Seasonal Temporal Pattern Mining algorithm (E-STPM, Algorithm 1).
//!
//! Mining proceeds in two steps:
//!
//! * **Step 2.1 — seasonal single events.** One scan of `D_SEQ` builds
//!   `HLH_1`; events whose `maxSeason` reaches `minSeason` are *candidates*
//!   (Apriori-like pruning, Lemmas 1–2); candidates whose season count
//!   reaches `minSeason` are frequent seasonal events.
//! * **Step 2.2 — seasonal k-event patterns.** Candidate k-event groups are
//!   grown from `HLH_{k-1} × FilteredF_1`, where `FilteredF_1` keeps only the
//!   single events that participate in candidate (k-1)-patterns
//!   (transitivity pruning, Lemmas 3–4). Relations are verified on the
//!   instance bindings stored in `HLH_{k-1}`, candidate patterns are kept in
//!   `HLH_k`, and the frequent ones are reported.
//!
//! Both prunings can be disabled individually through
//! [`PruningMode`](crate::config::PruningMode) to reproduce the ablation
//! study of the paper (Figures 15, 16, 25, 26).

use crate::config::{ResolvedConfig, StpmConfig};
use crate::engine::{phases, EngineReport, MiningEngine, MiningInput, PhaseTiming, PruningSummary};
use crate::error::Result;
use crate::hlh::{Binding, Hlh1, HlhK};
use crate::pattern::{RelationTriple, TemporalPattern};
use crate::relation::{chronological_order, classify_relation};
use crate::report::{LevelStats, MinedEvent, MinedPattern, MiningReport, MiningStats};
use crate::season::find_seasons;
use crate::support::intersect;
use std::time::Instant;
use stpm_timeseries::{EventLabel, SequenceDatabase};

/// The exact seasonal temporal pattern mining engine (E-STPM).
///
/// `StpmMiner` is a stateless engine value: the data to mine arrives per call
/// (either a bare [`SequenceDatabase`] through the inherent helpers, or a
/// full [`MiningInput`] through the [`MiningEngine`] trait).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StpmMiner;

impl StpmMiner {
    /// Mines a sequence database, resolving the fractional thresholds of
    /// `config` against the database size first.
    ///
    /// # Errors
    /// Propagates configuration-validation errors.
    pub fn mine_sequences(dseq: &SequenceDatabase, config: &StpmConfig) -> Result<MiningReport> {
        let resolved = config.resolve(dseq.num_granules())?;
        Ok(Self::mine_sequences_resolved(dseq, &resolved))
    }

    /// Mines a sequence database under an already-resolved configuration.
    #[must_use]
    pub fn mine_sequences_resolved(
        dseq: &SequenceDatabase,
        config: &ResolvedConfig,
    ) -> MiningReport {
        ExactRun {
            dseq,
            config: *config,
        }
        .mine()
    }
}

impl MiningEngine for StpmMiner {
    fn name(&self) -> &'static str {
        "E-STPM"
    }

    fn mine(&self, input: &MiningInput<'_>, config: &ResolvedConfig) -> Result<EngineReport> {
        let report = Self::mine_sequences_resolved(input.dseq(), config);
        let stats = report.stats();
        let timings = vec![
            PhaseTiming::new(phases::SINGLE_EVENTS, stats.single_event_time),
            PhaseTiming::new(phases::PATTERNS, stats.pattern_time),
        ];
        let memory = stats.peak_footprint_bytes;
        Ok(EngineReport::new(
            self.name(),
            report,
            input.dseq().registry().clone(),
            timings,
            PruningSummary::keep_all(input),
            memory,
        ))
    }
}

/// One exact mining run over one database (the Algorithm 1 implementation).
#[derive(Debug, Clone)]
struct ExactRun<'a> {
    dseq: &'a SequenceDatabase,
    config: ResolvedConfig,
}

impl ExactRun<'_> {
    /// Runs the full mining process and returns every frequent seasonal
    /// single event and temporal pattern.
    fn mine(&self) -> MiningReport {
        let total_start = Instant::now();
        let apriori = self.config.pruning.apriori_enabled();

        // -------- Step 2.1: frequent seasonal single events --------
        let single_start = Instant::now();
        let hlh1 = Hlh1::build(self.dseq, &self.config, apriori);
        let mut events_out = Vec::new();
        for label in hlh1.labels() {
            let entry = hlh1.entry(label).expect("label comes from the table");
            let seasons = find_seasons(&entry.support, &self.config);
            if seasons.is_frequent(self.config.min_season) {
                events_out.push(MinedEvent {
                    label,
                    support: entry.support.clone(),
                    seasons,
                });
            }
        }
        let single_event_time = single_start.elapsed();

        // -------- Step 2.2: frequent seasonal k-event patterns --------
        let pattern_start = Instant::now();
        let f1 = hlh1.labels();
        let mut patterns_out: Vec<MinedPattern> = Vec::new();
        let mut level_stats: Vec<LevelStats> = Vec::new();
        let mut levels: Vec<HlhK> = Vec::new();
        let mut footprint = hlh1.footprint_bytes();
        let mut peak_footprint = footprint;

        for k in 2..=self.config.max_pattern_len {
            let hlhk = if k == 2 {
                self.mine_pairs(&hlh1, &f1)
            } else {
                let prev = levels.last().expect("level k-1 was mined first");
                let hlh2 = levels.first().expect("level 2 exists");
                self.mine_k_events(&hlh1, &f1, prev, hlh2, k)
            };

            let mut frequent = 0usize;
            for entry in hlhk.patterns() {
                let seasons = find_seasons(&entry.support, &self.config);
                if seasons.is_frequent(self.config.min_season) {
                    frequent += 1;
                    patterns_out.push(MinedPattern::new(
                        entry.pattern.clone(),
                        entry.support.clone(),
                        seasons,
                    ));
                }
            }
            let level_footprint = hlhk.footprint_bytes();
            footprint += level_footprint;
            peak_footprint = peak_footprint.max(footprint);
            level_stats.push(LevelStats {
                k,
                candidate_groups: hlhk.num_groups(),
                candidate_patterns: hlhk.num_patterns(),
                frequent_patterns: frequent,
                footprint_bytes: level_footprint,
            });
            let empty = hlhk.is_empty();
            levels.push(hlhk);
            if empty {
                break;
            }
        }
        let pattern_time = pattern_start.elapsed();

        let stats = MiningStats {
            num_granules: self.dseq.num_granules(),
            num_events: self.dseq.distinct_events().len(),
            candidate_events: hlh1.len(),
            frequent_events: events_out.len(),
            levels: level_stats,
            total_time: total_start.elapsed(),
            single_event_time,
            pattern_time,
            peak_footprint_bytes: peak_footprint,
        };
        MiningReport::new(events_out, patterns_out, stats)
    }

    /// Mines candidate 2-event groups and patterns (Section IV-D, 4.2.1).
    /// Patterns relate *distinct* events: an event group is a set, matching
    /// the transactional view the APS-growth baseline mines — this is what
    /// makes the two engines output-equivalent.
    fn mine_pairs(&self, hlh1: &Hlh1, f1: &[EventLabel]) -> HlhK {
        let apriori = self.config.pruning.apriori_enabled();
        let mut hlh2 = HlhK::new(2);
        for (i, &ei) in f1.iter().enumerate() {
            for &ej in f1.iter().skip(i + 1) {
                let support = intersect(hlh1.support(ei), hlh1.support(ej));
                if support.is_empty() {
                    continue;
                }
                if apriori && !self.config.is_candidate(support.len()) {
                    continue;
                }
                let group = vec![ei, ej];
                hlh2.insert_group(group.clone(), support.clone());
                for &granule in &support {
                    let instances_i = hlh1.instances_at(ei, granule);
                    let instances_j = hlh1.instances_at(ej, granule);
                    for a in instances_i.iter() {
                        for b in instances_j.iter() {
                            let in_order = chronological_order(&a.interval, &b.interval, 0u8, 1u8);
                            let (first, second, swapped) = if in_order {
                                (a, b, false)
                            } else {
                                (b, a, true)
                            };
                            let Some(kind) = classify_relation(
                                &first.interval,
                                &second.interval,
                                self.config.epsilon,
                                self.config.min_overlap,
                            ) else {
                                continue;
                            };
                            let pattern = TemporalPattern::pair([ei, ej], kind, swapped);
                            hlh2.add_pattern_occurrence(&group, &pattern, granule, vec![*a, *b]);
                        }
                    }
                }
            }
        }
        if apriori {
            hlh2.retain_candidates(&self.config);
        }
        hlh2
    }

    /// Mines candidate k-event groups and patterns for k ≥ 3
    /// (Section IV-D, 4.2.2): each candidate (k-1)-group of `prev` is
    /// extended with a single event from `FilteredF_1`, relations with the
    /// new event are verified on the stored instance bindings, and the
    /// resulting candidate k-patterns are collected into a fresh `HLH_k`.
    fn mine_k_events(
        &self,
        hlh1: &Hlh1,
        f1: &[EventLabel],
        prev: &HlhK,
        hlh2: &HlhK,
        k: usize,
    ) -> HlhK {
        let apriori = self.config.pruning.apriori_enabled();
        let transitivity = self.config.pruning.transitivity_enabled();
        let filtered_f1: Vec<EventLabel> = if transitivity {
            let participating = prev.participating_events();
            f1.iter()
                .copied()
                .filter(|e| participating.binary_search(e).is_ok())
                .collect()
        } else {
            f1.to_vec()
        };

        let new_index = u8::try_from(k - 1).expect("pattern length fits u8");
        let mut hlhk = HlhK::new(k);
        for (group_events, group_entry) in prev.groups() {
            if group_entry.patterns.is_empty() {
                continue;
            }
            let last = *group_events.last().expect("groups are non-empty");
            for &ek in &filtered_f1 {
                if ek <= last {
                    continue;
                }
                let group_support = intersect(&group_entry.support, hlh1.support(ek));
                if group_support.is_empty() {
                    continue;
                }
                if apriori && !self.config.is_candidate(group_support.len()) {
                    continue;
                }
                // Transitivity pruning (Lemma 4): every event of the group
                // must already form a candidate relation with E_k in HLH_2.
                if transitivity
                    && !group_events
                        .iter()
                        .all(|&eprev| hlh2.has_relation_between(eprev, ek))
                {
                    continue;
                }
                let new_group: Vec<EventLabel> = group_events
                    .iter()
                    .copied()
                    .chain(std::iter::once(ek))
                    .collect();
                let mut group_registered = false;

                for pattern_entry in prev.patterns_of_group(group_events) {
                    let extendable = intersect(&pattern_entry.support, hlh1.support(ek));
                    for &granule in &extendable {
                        let ek_instances = hlh1.instances_at(ek, granule);
                        if ek_instances.is_empty() {
                            continue;
                        }
                        for binding in pattern_entry.bindings_at(granule) {
                            'instances: for ek_instance in ek_instances {
                                if binding.iter().any(|b| b == ek_instance) {
                                    continue;
                                }
                                let mut new_triples = Vec::with_capacity(binding.len());
                                for (idx, bound) in binding.iter().enumerate() {
                                    let idx_u8 = u8::try_from(idx).expect("pattern length fits u8");
                                    let in_order = chronological_order(
                                        &bound.interval,
                                        &ek_instance.interval,
                                        idx_u8,
                                        new_index,
                                    );
                                    let triple = if in_order {
                                        classify_relation(
                                            &bound.interval,
                                            &ek_instance.interval,
                                            self.config.epsilon,
                                            self.config.min_overlap,
                                        )
                                        .map(|r| RelationTriple::new(r, idx_u8, new_index))
                                    } else {
                                        classify_relation(
                                            &ek_instance.interval,
                                            &bound.interval,
                                            self.config.epsilon,
                                            self.config.min_overlap,
                                        )
                                        .map(|r| RelationTriple::new(r, new_index, idx_u8))
                                    };
                                    match triple {
                                        Some(t) => new_triples.push(t),
                                        None => continue 'instances,
                                    }
                                }
                                let new_pattern = pattern_entry.pattern.extended(ek, new_triples);
                                if !group_registered {
                                    hlhk.insert_group(new_group.clone(), group_support.clone());
                                    group_registered = true;
                                }
                                let mut new_binding: Binding = binding.clone();
                                new_binding.push(*ek_instance);
                                hlhk.add_pattern_occurrence(
                                    &new_group,
                                    &new_pattern,
                                    granule,
                                    new_binding,
                                );
                            }
                        }
                    }
                }
            }
        }
        if apriori {
            hlhk.retain_candidates(&self.config);
        }
        hlhk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PruningMode, Threshold};
    use crate::relation::RelationKind;
    use std::collections::BTreeSet;
    use stpm_timeseries::{Alphabet, SymbolicDatabase, SymbolicSeries};

    /// Builds the full running example of the paper (Table II / Table IV):
    /// five appliance series at 5-minute granularity, 42 instants, mapped to
    /// 14 granules of 15 minutes.
    fn paper_dseq() -> (SymbolicDatabase, SequenceDatabase) {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let rows: &[(&str, &str)] = &[
            ("C", "110100110000000000111111000000100110000110"),
            ("D", "100100110110000000111111000000100100110110"),
            ("F", "001011001001111000000000111111001001001001"),
            ("M", "111100111110111111000111111111111000111000"),
            ("N", "110111111110111111000000111111111111111000"),
        ];
        let series: Vec<SymbolicSeries> = rows
            .iter()
            .map(|(name, bits)| {
                let labels: Vec<&str> = bits
                    .chars()
                    .map(|c| if c == '1' { "1" } else { "0" })
                    .collect();
                SymbolicSeries::from_labels(name, &labels, alphabet.clone()).unwrap()
            })
            .collect();
        let dsyb = SymbolicDatabase::new(series).unwrap();
        let dseq = dsyb.to_sequence_database(3).unwrap();
        (dsyb, dseq)
    }

    fn paper_config() -> StpmConfig {
        StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(2),
            dist_interval: (3, 10),
            min_season: 2,
            max_pattern_len: 3,
            ..StpmConfig::default()
        }
    }

    #[test]
    fn mining_the_paper_example_finds_c1_contains_d1() {
        let (dsyb, dseq) = paper_dseq();
        let report = StpmMiner::mine_sequences(&dseq, &paper_config()).unwrap();

        let c1 = dsyb.registry().label("C", "1").unwrap();
        let d1 = dsyb.registry().label("D", "1").unwrap();
        let target = TemporalPattern::pair([c1, d1], RelationKind::Contains, false);
        let found = report
            .patterns()
            .iter()
            .find(|p| p.pattern() == &target)
            .expect("C:1 contains D:1 must be a frequent seasonal pattern");
        assert_eq!(found.support(), &[1, 2, 3, 7, 8, 11, 12, 14]);
        assert!(found.seasons().count() >= 2);
    }

    #[test]
    fn single_event_m1_is_not_frequent_but_participates_in_patterns() {
        // The anti-monotonicity counter-example of Section IV-B: M:1 alone is
        // not seasonal (one long season), yet M:1 ≽ N:1 is.
        let (dsyb, dseq) = paper_dseq();
        let config = StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(3),
            dist_interval: (4, 10),
            min_season: 2,
            max_pattern_len: 2,
            ..StpmConfig::default()
        };
        let report = StpmMiner::mine_sequences(&dseq, &config).unwrap();

        let m1 = dsyb.registry().label("M", "1").unwrap();
        let n1 = dsyb.registry().label("N", "1").unwrap();
        assert!(
            !report.events().iter().any(|e| e.label == m1),
            "M:1 must not be a frequent seasonal single event"
        );
        let target = TemporalPattern::pair([m1, n1], RelationKind::Contains, false);
        assert!(
            report.contains_pattern(&target),
            "M:1 contains N:1 must be frequent"
        );
    }

    #[test]
    fn report_contains_three_event_patterns() {
        let (_, dseq) = paper_dseq();
        let report = StpmMiner::mine_sequences(&dseq, &paper_config()).unwrap();
        assert!(
            !report.patterns_of_len(3).is_empty(),
            "the example database contains frequent 3-event patterns"
        );
        // Every 3-event pattern has 3 relation triples.
        for p in report.patterns_of_len(3) {
            assert_eq!(p.pattern().triples().len(), 3);
        }
    }

    #[test]
    fn all_pruning_modes_find_the_same_frequent_patterns() {
        // The prunings are exact: they shrink the search space but never the
        // output (completeness of E-STPM).
        let (_, dseq) = paper_dseq();
        let mut outputs: Vec<BTreeSet<String>> = Vec::new();
        for mode in PruningMode::all_modes() {
            let config = paper_config().with_pruning(mode);
            let report = StpmMiner::mine_sequences(&dseq, &config).unwrap();
            let set: BTreeSet<String> = report
                .patterns()
                .iter()
                .map(|p| format!("{:?}", p.pattern()))
                .chain(report.events().iter().map(|e| format!("{:?}", e.label)))
                .collect();
            outputs.push(set);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
        assert_eq!(outputs[2], outputs[3]);
        assert!(!outputs[0].is_empty());
    }

    #[test]
    fn pruning_shrinks_candidate_counts() {
        let (_, dseq) = paper_dseq();
        let full = StpmMiner::mine_sequences(&dseq, &paper_config().with_pruning(PruningMode::All))
            .unwrap();
        let none =
            StpmMiner::mine_sequences(&dseq, &paper_config().with_pruning(PruningMode::NoPrune))
                .unwrap();
        assert!(full.stats().total_candidate_patterns() <= none.stats().total_candidate_patterns());
        assert!(full.stats().candidate_events <= none.stats().candidate_events);
    }

    #[test]
    fn stats_are_populated() {
        let (_, dseq) = paper_dseq();
        let report = StpmMiner::mine_sequences(&dseq, &paper_config()).unwrap();
        let stats = report.stats();
        assert_eq!(stats.num_granules, 14);
        assert_eq!(stats.num_events, 10);
        assert!(stats.candidate_events > 0);
        assert!(stats.peak_footprint_bytes > 0);
        assert!(!stats.levels.is_empty());
        assert_eq!(stats.levels[0].k, 2);
        assert!(stats.total_frequent_patterns() > 0);
    }

    #[test]
    fn max_pattern_len_one_mines_only_events() {
        let (_, dseq) = paper_dseq();
        let config = StpmConfig {
            max_pattern_len: 1,
            ..paper_config()
        };
        let report = StpmMiner::mine_sequences(&dseq, &config).unwrap();
        assert!(report.patterns().is_empty());
        assert!(!report.events().is_empty());
    }

    #[test]
    fn strict_thresholds_yield_empty_output() {
        let (_, dseq) = paper_dseq();
        let config = StpmConfig {
            max_period: Threshold::Absolute(1),
            min_density: Threshold::Absolute(10),
            dist_interval: (1, 2),
            min_season: 5,
            ..paper_config()
        };
        let report = StpmMiner::mine_sequences(&dseq, &config).unwrap();
        assert!(report.patterns().is_empty());
        assert!(report.events().is_empty());
    }

    #[test]
    fn epsilon_widens_or_preserves_the_output() {
        let (_, dseq) = paper_dseq();
        let strict = StpmMiner::mine_sequences(&dseq, &paper_config().with_epsilon(0)).unwrap();
        let tolerant = StpmMiner::mine_sequences(&dseq, &paper_config().with_epsilon(1)).unwrap();
        // With ε the relation classifier merges near-boundary cases; the
        // number of *distinct* patterns may change, but mining must still
        // succeed and find the headline pattern.
        assert!(strict.total_patterns() > 0);
        assert!(tolerant.total_patterns() > 0);
    }

    #[test]
    fn resolved_entry_point_matches_the_resolving_one() {
        let (_, dseq) = paper_dseq();
        let config = paper_config();
        let resolved = config.resolve(dseq.num_granules()).unwrap();
        let a = StpmMiner::mine_sequences(&dseq, &config).unwrap();
        let b = StpmMiner::mine_sequences_resolved(&dseq, &resolved);
        assert_eq!(a.patterns().len(), b.patterns().len());
        assert_eq!(a.events().len(), b.events().len());
    }

    #[test]
    fn engine_trait_wraps_the_exact_miner() {
        use crate::engine::accuracy;
        let (dsyb, dseq) = paper_dseq();
        let input = MiningInput::new(&dsyb, &dseq, 3);
        let engine: &dyn MiningEngine = &StpmMiner;
        assert_eq!(engine.name(), "E-STPM");
        let report = engine.mine_with(&input, &paper_config()).unwrap();
        let direct = StpmMiner::mine_sequences(&dseq, &paper_config()).unwrap();
        assert_eq!(report.total_patterns(), direct.total_patterns());
        assert_eq!(report.pruning().pruned_series.len(), 0);
        assert_eq!(report.pruning().kept_series.len(), 5);
        assert!(report.phase_time(phases::SINGLE_EVENTS) <= report.total_time());
        assert!(report.memory_bytes() > 0);
        assert!((accuracy(&report, &report) - 100.0).abs() < 1e-12);
        assert!(!report.pattern_set().is_empty());
    }
}
