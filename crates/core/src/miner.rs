//! The Seasonal Temporal Pattern Mining algorithm (E-STPM, Algorithm 1).
//!
//! Mining proceeds in two steps:
//!
//! * **Step 2.1 — seasonal single events.** One scan of `D_SEQ` builds
//!   `HLH_1`; events whose `maxSeason` reaches `minSeason` are *candidates*
//!   (Apriori-like pruning, Lemmas 1–2); candidates whose season count
//!   reaches `minSeason` are frequent seasonal events.
//! * **Step 2.2 — seasonal k-event patterns.** Candidate k-event groups are
//!   grown from `HLH_{k-1} × FilteredF_1`, where `FilteredF_1` keeps only the
//!   single events that participate in candidate (k-1)-patterns
//!   (transitivity pruning, Lemmas 3–4). Relations are verified on the
//!   instance bindings stored in `HLH_{k-1}`, candidate patterns are kept in
//!   `HLH_k`, and the frequent ones are reported.
//!
//! Both prunings can be disabled individually through
//! [`PruningMode`](crate::config::PruningMode) to reproduce the ablation
//! study of the paper (Figures 15, 16, 25, 26).
//!
//! # Parallelism and memory
//!
//! Level mining is embarrassingly parallel across candidate groups: each
//! level-2 event pair, and each (k-1)-group extension, is mined independently
//! of every other. When [`StpmConfig::threads`] (resolved into
//! [`ResolvedConfig::threads`]) is greater than one, the candidate space of
//! each level is split into contiguous shards mined on scoped worker threads;
//! the per-shard `HLH_k` structures are merged back in shard order
//! ([`HlhK::merge_shards`]), which makes the parallel output *identical* —
//! pattern order included — to the sequential one.
//!
//! Extension at level k only ever reads `HLH_2` (transitivity lookups) and
//! `HLH_{k-1}` (instance bindings), so those are the only levels kept alive:
//! every earlier level is dropped as soon as its successor exists, and
//! [`MiningStats::peak_footprint_bytes`] reports the peak of the *live*
//! structures, not the historical sum of all levels.
//!
//! # Level-2 reuse at k ≥ 3
//!
//! The k ≥ 3 loop never re-derives what level 2 already knows:
//!
//! * extension candidates of a (k-1)-group are enumerated from the bitwise
//!   AND of the members' [`RelationAdjacency`] rows (one pass instead of a
//!   full `FilteredF_1` scan with per-member `has_relation_between` probes);
//!   the skipped combinations are counted in
//!   [`LevelStats::adjacency_pruned_candidates`];
//! * relation verdicts between a binding member and an extension-event
//!   instance are looked up in the [`VerdictTable`](crate::hlh::VerdictTable)
//!   recorded while mining level 2 (counted in
//!   [`LevelStats::classifier_calls_saved`]); the closed-form classifier
//!   remains as the fallback for unrecorded pairs and as the debug-build
//!   cross-check;
//! * the last level of a run is mined *terminal* ([`HlhK::new_terminal`]):
//!   nothing ever reads its bindings, so the binding pool — the bulk of a
//!   level's footprint — is never populated.
//!
//! # Batch vs streaming
//!
//! `StpmMiner` is the *batch* engine: one immutable database in, one report
//! out. Everything it derives is granule-local (an occurrence binds
//! instances of a single granule), which is what the incremental
//! [`StreamingMiner`](crate::streaming::StreamingMiner) exploits to absorb
//! appended granules without re-mining history: supports only ever grow at
//! the tail, and the season walk over them is resumable
//! ([`SeasonTracker`](crate::season::SeasonTracker)). The streaming engine's
//! checkpoints are exact w.r.t. a batch re-mine of the same prefix — the
//! batch miner is both the reference implementation and the
//! re-mine contender the streaming benchmarks compare against.

use crate::config::{ResolvedConfig, StpmConfig};
use crate::engine::{phases, EngineReport, MiningEngine, MiningInput, PhaseTiming, PruningSummary};
use crate::error::Result;
use crate::hlh::{EventEntry, GroupEntry, GroupId, Hlh1, HlhK, PairVerdicts, RelationAdjacency};
use crate::pattern::{encode_label, encode_triple, RelationTriple, TemporalPattern};
use crate::relation::{
    chronological_order, classify_relation, decode_verdict, encode_verdict, VERDICT_NONE,
};
use crate::report::{LevelStats, MinedEvent, MinedPattern, MiningReport, MiningStats};
use crate::season::{find_seasons, support_is_frequent};
use crate::support::{
    intersect_into, intersect_positions_into, intersect_rows_into, iter_set_bits, SupportSet,
};
use std::ops::Range;
use std::time::Instant;
use stpm_timeseries::{EventInstance, EventLabel, SequenceDatabase};

/// Per-shard scratch buffers threaded through the chunk miners: support
/// intersections, match positions, interning keys and relation triples all
/// reuse their capacity across candidates instead of allocating per
/// candidate. Each shard owns one `Scratch`, so the parallel path needs no
/// synchronisation around them.
#[derive(Debug, Default)]
struct Scratch {
    /// Candidate-group support under construction (k-loop), kept alive while
    /// the per-pattern buffers below are recycled.
    group_support: SupportSet,
    /// Pair/extendable support intersection output.
    support: SupportSet,
    /// Positions of the intersection matches in the left input.
    pos_a: Vec<u32>,
    /// Positions of the intersection matches in the right input.
    pos_b: Vec<u32>,
    /// Packed interning key under construction.
    key: Vec<u64>,
    /// Relation triples of the occurrence under construction.
    triples: Vec<RelationTriple>,
    /// Bitwise-AND of the group members' adjacency rows.
    row: Vec<u64>,
    /// The enumerated extension events of the current group.
    ext: Vec<EventLabel>,
}

/// Per-level reuse counters collected while mining a chunk; summed across
/// shards (the sums are order-independent, so parallel runs report exactly
/// the sequential numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct LevelCounters {
    /// `classify_relation` calls replaced by a verdict-table lookup.
    classifier_calls_saved: usize,
    /// (group, extension-event) combinations the adjacency rows pruned
    /// before any support intersection ran.
    adjacency_pruned_candidates: usize,
}

impl LevelCounters {
    fn merge(&mut self, other: LevelCounters) {
        self.classifier_calls_saved += other.classifier_calls_saved;
        self.adjacency_pruned_candidates += other.adjacency_pruned_candidates;
    }
}

/// The exact seasonal temporal pattern mining engine (E-STPM).
///
/// `StpmMiner` is a stateless engine value: the data to mine arrives per call
/// (either a bare [`SequenceDatabase`] through the inherent helpers, or a
/// full [`MiningInput`] through the [`MiningEngine`] trait).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StpmMiner;

impl StpmMiner {
    /// Mines a sequence database, resolving the fractional thresholds of
    /// `config` against the database size first.
    ///
    /// # Errors
    /// Propagates configuration-validation errors.
    pub fn mine_sequences(dseq: &SequenceDatabase, config: &StpmConfig) -> Result<MiningReport> {
        let resolved = config.resolve(dseq.num_granules())?;
        Ok(Self::mine_sequences_resolved(dseq, &resolved))
    }

    /// Mines a sequence database under an already-resolved configuration.
    #[must_use]
    pub fn mine_sequences_resolved(
        dseq: &SequenceDatabase,
        config: &ResolvedConfig,
    ) -> MiningReport {
        ExactRun {
            dseq,
            config: *config,
        }
        .mine()
    }
}

impl MiningEngine for StpmMiner {
    fn name(&self) -> &'static str {
        "E-STPM"
    }

    fn mine(&self, input: &MiningInput<'_>, config: &ResolvedConfig) -> Result<EngineReport> {
        let report = Self::mine_sequences_resolved(input.dseq(), config);
        let stats = report.stats();
        let timings = vec![
            PhaseTiming::new(phases::SINGLE_EVENTS, stats.single_event_time),
            PhaseTiming::new(phases::PATTERNS, stats.pattern_time),
        ];
        let memory = stats.peak_footprint_bytes;
        Ok(EngineReport::new(
            self.name(),
            report,
            input.dseq().registry().clone(),
            timings,
            PruningSummary::keep_all(input),
            memory,
        ))
    }
}

/// One exact mining run over one database (the Algorithm 1 implementation).
#[derive(Debug, Clone)]
struct ExactRun<'a> {
    dseq: &'a SequenceDatabase,
    config: ResolvedConfig,
}

impl ExactRun<'_> {
    /// Runs the full mining process and returns every frequent seasonal
    /// single event and temporal pattern.
    fn mine(&self) -> MiningReport {
        let total_start = Instant::now();
        let apriori = self.config.pruning.apriori_enabled();

        // -------- Step 2.1: frequent seasonal single events --------
        let single_start = Instant::now();
        let hlh1 = Hlh1::build(self.dseq, &self.config, apriori);
        crate::invariants::debug_validate!(hlh1.validate());
        let mut events_out = Vec::new();
        for &label in hlh1.labels() {
            let entry = hlh1.entry(label).expect("label comes from the table");
            // Allocation-free early-exit frequency check; seasons are
            // materialised only for the survivors.
            if support_is_frequent(&entry.support, &self.config) {
                events_out.push(MinedEvent {
                    label,
                    support: entry.support.clone(),
                    seasons: find_seasons(&entry.support, &self.config),
                });
            }
        }
        let single_event_time = single_start.elapsed();

        // -------- Step 2.2: frequent seasonal k-event patterns --------
        // Only HLH_2 (transitivity lookups) and HLH_{k-1} (bindings to
        // extend) are ever read again, so only those stay alive; the peak
        // footprint tracks the live structures of each level.
        let pattern_start = Instant::now();
        let f1: &[EventLabel] = hlh1.labels();
        let hlh1_footprint = hlh1.footprint_bytes();
        let mut patterns_out: Vec<MinedPattern> = Vec::new();
        let mut level_stats: Vec<LevelStats> = Vec::new();
        let mut hlh2: Option<HlhK> = None;
        let mut prev: Option<HlhK> = None;
        let mut adjacency: Option<RelationAdjacency> = None;
        let mut peak_footprint = hlh1_footprint;

        for k in 2..=self.config.max_pattern_len {
            // The last level is never extended: mine it without a binding
            // pool (and, at level 2, without the verdict table).
            let terminal = k == self.config.max_pattern_len;
            let (mut hlhk, counters) = match (k, &hlh2, &prev) {
                (2, _, _) => self.mine_pairs(&hlh1, f1, terminal),
                (3, Some(h2), _) => {
                    self.mine_k_events(&hlh1, f1, h2, h2, k, adjacency.as_ref(), terminal)
                }
                (_, Some(h2), Some(p)) => {
                    self.mine_k_events(&hlh1, f1, p, h2, k, adjacency.as_ref(), terminal)
                }
                _ => unreachable!("levels are mined in increasing k"),
            };
            if apriori {
                hlhk.retain_candidates(&self.config);
            }
            crate::invariants::debug_validate!(hlhk.validate());
            if k == 2 && !terminal && self.config.pruning.transitivity_enabled() {
                // Built after retain_candidates so the bit matrix matches
                // exactly what has_relation_between would answer at k >= 3.
                adjacency = Some(RelationAdjacency::build(&hlhk, f1));
            }

            let mut frequent = 0usize;
            for entry in hlhk.patterns() {
                // Allocation-free early-exit frequency check; seasons are
                // materialised only for the survivors.
                if support_is_frequent(&entry.support, &self.config) {
                    frequent += 1;
                    patterns_out.push(MinedPattern::new(
                        entry.pattern.clone(),
                        entry.support.clone(),
                        find_seasons(&entry.support, &self.config),
                    ));
                }
            }
            let level_footprint = hlhk.footprint_bytes();
            let live_footprint = hlh1_footprint
                + adjacency
                    .as_ref()
                    .map_or(0, RelationAdjacency::footprint_bytes)
                + hlh2.as_ref().map_or(0, HlhK::footprint_bytes)
                + prev.as_ref().map_or(0, HlhK::footprint_bytes)
                + level_footprint;
            peak_footprint = peak_footprint.max(live_footprint);
            level_stats.push(LevelStats {
                k,
                candidate_groups: hlhk.num_groups(),
                candidate_patterns: hlhk.num_patterns(),
                frequent_patterns: frequent,
                footprint_bytes: level_footprint,
                classifier_calls_saved: counters.classifier_calls_saved,
                adjacency_pruned_candidates: counters.adjacency_pruned_candidates,
            });
            let empty = hlhk.is_empty();
            if k == 2 {
                hlh2 = Some(hlhk);
            } else {
                prev = Some(hlhk); // drops level k-1 (for k ≥ 4)
            }
            if empty {
                break;
            }
        }
        let pattern_time = pattern_start.elapsed();

        let stats = MiningStats {
            num_granules: self.dseq.num_granules(),
            num_events: self.dseq.distinct_events().len(),
            candidate_events: hlh1.len(),
            frequent_events: events_out.len(),
            levels: level_stats,
            total_time: total_start.elapsed(),
            single_event_time,
            pattern_time,
            peak_footprint_bytes: peak_footprint,
        };
        MiningReport::new(events_out, patterns_out, stats)
    }

    /// Shards level-mining work across the configured worker threads and
    /// merges the per-shard levels in shard order. `shard_ranges` cuts
    /// `0..num_items` into at most `threads` *contiguous* ranges of roughly
    /// equal estimated cost (evaluated only when actually sharding, so the
    /// sequential path pays nothing for it); contiguity is what lets the
    /// merged level preserve sequential order while heavy items don't pile
    /// up in one shard. With one thread — or one work item — the chunk miner
    /// runs inline on the caller's thread.
    fn mine_sharded<C, F>(
        &self,
        k: usize,
        num_items: usize,
        shard_ranges: C,
        mine_chunk: F,
    ) -> (HlhK, LevelCounters)
    where
        C: FnOnce(usize) -> Vec<Range<usize>>,
        F: Fn(Range<usize>) -> (HlhK, LevelCounters) + Sync,
    {
        let threads = self.config.threads.min(num_items).max(1);
        if threads == 1 {
            return mine_chunk(0..num_items);
        }
        let ranges = shard_ranges(threads);
        debug_assert_eq!(ranges.first().map(|r| r.start), Some(0));
        debug_assert_eq!(ranges.last().map(|r| r.end), Some(num_items));
        let results: Vec<(HlhK, LevelCounters)> = std::thread::scope(|scope| {
            let mine_chunk = &mine_chunk;
            let handles: Vec<_> = ranges
                .into_iter()
                // Row-aligned cuts can map to an empty pair range (the last
                // triangle row holds no pairs) — nothing to spawn for.
                .filter(|range| !range.is_empty())
                .map(|range| scope.spawn(move || mine_chunk(range)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("mining shard panicked"))
                .collect()
        });
        let mut counters = LevelCounters::default();
        let shards: Vec<HlhK> = results
            .into_iter()
            .map(|(shard, shard_counters)| {
                counters.merge(shard_counters);
                shard
            })
            .collect();
        (HlhK::merge_shards(k, shards), counters)
    }

    /// Mines candidate 2-event groups and patterns (Section IV-D, 4.2.1),
    /// sharding the candidate pair space across the configured threads.
    /// Patterns relate *distinct* events: an event group is a set, matching
    /// the transactional view the APS-growth baseline mines — this is what
    /// makes the two engines output-equivalent.
    ///
    /// Unless the level is `terminal`, every classification verdict is also
    /// recorded into the level's [`VerdictTable`](crate::hlh::VerdictTable)
    /// so the k ≥ 3 loop can look relations up instead of re-classifying.
    fn mine_pairs(&self, hlh1: &Hlh1, f1: &[EventLabel], terminal: bool) -> (HlhK, LevelCounters) {
        let n = f1.len();
        let num_pairs = n * n.saturating_sub(1) / 2;
        // A pair's work is bounded by its support intersection, which is at
        // most the smaller of the two single-event supports. Costs are
        // aggregated per row (per first event) so the estimator stays O(n)
        // in memory even when the pair space has millions of entries; the
        // shard cuts are row-aligned as a result.
        let shard_ranges = |threads: usize| {
            let row_costs: Vec<u64> = (0..n)
                .map(|i| {
                    let sup_i = hlh1.support(f1[i]).len() as u64;
                    f1[i + 1..]
                        .iter()
                        .map(|&ej| 1 + sup_i.min(hlh1.support(ej).len() as u64))
                        .sum()
                })
                .collect();
            balanced_ranges(&row_costs, threads)
                .into_iter()
                .map(|rows| pair_offset(n, rows.start)..pair_offset(n, rows.end))
                .collect()
        };
        self.mine_sharded(2, num_pairs, shard_ranges, |range| {
            self.mine_pairs_chunk(hlh1, f1, range, terminal)
        })
    }

    /// Mines one shard of the candidate pair space into a local `HLH_2`.
    /// A group is registered lazily, on its first candidate pattern: a pair
    /// whose instances never classify into a relation contributes no
    /// candidates and must not inflate the level's group count.
    ///
    /// The loop is allocation-free per occurrence: the support intersection
    /// reuses the shard's scratch buffers, instance slices are reached
    /// through the recorded intersection positions (no binary search per
    /// granule), the pattern is identified by a three-word stack key, and
    /// the binding is appended straight into the level's instance pool.
    ///
    /// Unless `terminal`, every cross-product cell's verdict — including the
    /// "no relation" outcome — is appended to the verdict table in row-major
    /// (`ei`-instance × `ej`-instance) order, giving the k ≥ 3 loop complete
    /// coverage of every pair it can ever probe.
    fn mine_pairs_chunk(
        &self,
        hlh1: &Hlh1,
        f1: &[EventLabel],
        range: Range<usize>,
        terminal: bool,
    ) -> (HlhK, LevelCounters) {
        let apriori = self.config.pruning.apriori_enabled();
        let record_verdicts = !terminal;
        let mut hlh2 = if terminal {
            HlhK::new_terminal(2)
        } else {
            HlhK::new(2)
        };
        let mut scratch = Scratch::default();
        for (ei, ej) in pair_range(f1, range) {
            let entry_i = hlh1.entry(ei).expect("f1 labels come from HLH_1");
            let entry_j = hlh1.entry(ej).expect("f1 labels come from HLH_1");
            intersect_positions_into(
                &entry_i.support,
                &entry_j.support,
                &mut scratch.support,
                &mut scratch.pos_a,
                &mut scratch.pos_b,
            );
            if scratch.support.is_empty() {
                continue;
            }
            if apriori && !self.config.is_candidate(scratch.support.len()) {
                continue;
            }
            let (enc_i, enc_j) = (encode_label(ei), encode_label(ej));
            let mut group_id: Option<GroupId> = None;
            if record_verdicts {
                hlh2.verdict_table_mut().begin_pair(ei, ej);
            }
            for (m, &granule) in scratch.support.iter().enumerate() {
                let instances_i = entry_i.instances_at_index(scratch.pos_a[m] as usize);
                let instances_j = entry_j.instances_at_index(scratch.pos_b[m] as usize);
                if record_verdicts {
                    hlh2.verdict_table_mut().begin_granule(granule);
                }
                for a in instances_i.iter() {
                    for b in instances_j.iter() {
                        let in_order = chronological_order(&a.interval, &b.interval, 0u8, 1u8);
                        let (first, second) = if in_order { (a, b) } else { (b, a) };
                        let verdict = classify_relation(
                            &first.interval,
                            &second.interval,
                            self.config.epsilon,
                            self.config.min_overlap,
                        );
                        if record_verdicts {
                            hlh2.verdict_table_mut().push_verdict(
                                verdict
                                    .map_or(VERDICT_NONE, |kind| encode_verdict(kind, !in_order)),
                            );
                        }
                        let Some(kind) = verdict else {
                            continue;
                        };
                        let triple = if in_order {
                            RelationTriple::new(kind, 0, 1)
                        } else {
                            RelationTriple::new(kind, 1, 0)
                        };
                        let key = [enc_i, enc_j, encode_triple(triple)];
                        let group = *group_id.get_or_insert_with(|| {
                            hlh2.insert_group(vec![ei, ej], scratch.support.clone())
                        });
                        hlh2.add_pattern_occurrence(
                            group,
                            &key,
                            || TemporalPattern::pair([ei, ej], kind, !in_order),
                            granule,
                            std::slice::from_ref(a),
                            *b,
                        );
                    }
                }
            }
        }
        (hlh2, LevelCounters::default())
    }

    /// Mines candidate k-event groups and patterns for k ≥ 3
    /// (Section IV-D, 4.2.2): each candidate (k-1)-group of `prev` is
    /// extended with a single event, relations with the new event are
    /// verified on the stored instance bindings, and the resulting candidate
    /// k-patterns are collected into a fresh `HLH_k`. The (k-1)-group list
    /// is sharded across the configured threads.
    ///
    /// With transitivity pruning on, `adjacency` must carry the level-2
    /// relation matrix: the extension events of a group are then enumerated
    /// from the AND of its members' rows (masked to `FilteredF_1`) instead
    /// of scanning `FilteredF_1` and probing `has_relation_between` per
    /// member.
    #[allow(clippy::too_many_arguments)]
    fn mine_k_events(
        &self,
        hlh1: &Hlh1,
        f1: &[EventLabel],
        prev: &HlhK,
        hlh2: &HlhK,
        k: usize,
        adjacency: Option<&RelationAdjacency>,
        terminal: bool,
    ) -> (HlhK, LevelCounters) {
        let transitivity = self.config.pruning.transitivity_enabled();
        debug_assert_eq!(
            transitivity,
            adjacency.is_some(),
            "the adjacency matrix exists exactly when transitivity pruning is on"
        );
        let filtered_f1: Vec<EventLabel> = if transitivity {
            let participating = prev.participating_events();
            f1.iter()
                .copied()
                .filter(|e| participating.binary_search(e).is_ok())
                .collect()
        } else {
            f1.to_vec()
        };
        // FilteredF_1 as a bitset over the adjacency's interned label ids,
        // AND-ed into every group's extension row. For k = 3 the mask is
        // redundant (any event related to both members participates in a
        // 2-pattern by definition), but for k >= 4 it is what keeps the
        // enumeration identical to the scan-and-probe path.
        let filtered_mask: Option<Vec<u64>> = adjacency.map(|adj| {
            let mut mask = vec![0u64; adj.len().div_ceil(64)];
            for &label in &filtered_f1 {
                let id = adj
                    .index_of(label)
                    .expect("FilteredF_1 labels are candidates");
                mask[id / 64] |= 1 << (id % 64);
            }
            mask
        });
        let groups: Vec<&GroupEntry> = prev
            .groups()
            .into_iter()
            .filter(|entry| !entry.patterns.is_empty())
            .collect();
        // A group's extension work scales with the occurrences of its
        // candidate patterns (every binding is a potential extension seed).
        let shard_ranges = |threads: usize| {
            let costs: Vec<u64> = groups
                .iter()
                .map(|entry| {
                    1 + entry
                        .patterns
                        .iter()
                        .map(|&id| prev.pattern(id).support.len() as u64)
                        .sum::<u64>()
                })
                .collect();
            balanced_ranges(&costs, threads)
        };
        self.mine_sharded(k, groups.len(), shard_ranges, |range| {
            self.mine_k_events_chunk(
                hlh1,
                &filtered_f1,
                filtered_mask.as_deref(),
                prev,
                hlh2,
                adjacency,
                k,
                &groups[range],
                terminal,
            )
        })
    }

    /// Mines one shard of the (k-1)-group list into a local `HLH_k`.
    ///
    /// Like the pair miner, the extension loop performs no per-occurrence
    /// allocation: the group/extendable intersections reuse the shard's
    /// scratch buffers, the interning key of an extended pattern is built
    /// incrementally in a scratch word buffer (events + base triples are
    /// shared prefixes, only the new triples vary per occurrence), bindings
    /// of the previous level are read as pool slices, and the extended
    /// binding is appended to the new level's pool without materialising an
    /// owned vector. A [`TemporalPattern`] is only constructed the first
    /// time its key appears.
    ///
    /// Relation verdicts between a binding member and an extension instance
    /// are read from the level-2 verdict table: the pair handle is resolved
    /// once per (group, `E_k`), the granule block once per granule, and the
    /// member's row once per binding, so the per-cell cost is one byte load.
    /// Cells the table does not cover fall back to the closed-form
    /// classifier; in debug builds every hit is cross-checked against it.
    #[allow(clippy::too_many_arguments)]
    fn mine_k_events_chunk(
        &self,
        hlh1: &Hlh1,
        filtered_f1: &[EventLabel],
        filtered_mask: Option<&[u64]>,
        prev: &HlhK,
        hlh2: &HlhK,
        adjacency: Option<&RelationAdjacency>,
        k: usize,
        groups: &[&GroupEntry],
        terminal: bool,
    ) -> (HlhK, LevelCounters) {
        let apriori = self.config.pruning.apriori_enabled();
        let new_index = u8::try_from(k - 1).expect("pattern length fits u8");
        let verdicts = hlh2.verdict_table();
        let mut hlhk = if terminal {
            HlhK::new_terminal(k)
        } else {
            HlhK::new(k)
        };
        let mut counters = LevelCounters::default();
        let mut scratch = Scratch::default();
        let kernels = crate::simd::kernels();
        // Chunk-lived buffers of borrowed data (they hold references into
        // the adjacency matrix, HLH_1 and the verdict table, so they cannot
        // live in the owned `Scratch`); all reuse their capacity across
        // candidates.
        let mut member_rows: Vec<&[u64]> = Vec::new();
        let mut member_entries: Vec<&EventEntry> = Vec::new();
        let mut member_pairs: Vec<Option<PairVerdicts<'_>>> = Vec::new();
        let mut member_blocks: Vec<Option<(&[u8], &[EventInstance])>> = Vec::new();
        let mut binding_rows: Vec<Option<&[u8]>> = Vec::new();
        for &group_entry in groups {
            let group_events = &group_entry.events;
            let last = *group_events.last().expect("groups are non-empty");
            member_entries.clear();
            for &member in group_events {
                member_entries.push(hlh1.entry(member).expect("group events come from HLH_1"));
            }
            // ---- extension enumeration ----
            scratch.ext.clear();
            if let Some(adj) = adjacency {
                // Transitivity pruning (Lemma 4) as one bitwise pass: the
                // extension set is the AND of the members' neighbor rows,
                // masked to FilteredF_1, walked beyond the last member.
                member_rows.clear();
                for &member in group_events {
                    let id = adj.index_of(member).expect("group events are candidates");
                    member_rows.push(adj.row(id));
                }
                let Scratch { row, ext, .. } = &mut scratch;
                intersect_rows_into(row, &member_rows);
                if let Some(mask) = filtered_mask {
                    kernels.and_words(row, mask);
                }
                let last_id = adj.index_of(last).expect("group events are candidates");
                ext.extend(iter_set_bits(row, last_id + 1).map(|id| adj.label(id)));
                let naive = filtered_f1.len() - filtered_f1.partition_point(|&e| e <= last);
                counters.adjacency_pruned_candidates += naive - ext.len();
            } else {
                let from = filtered_f1.partition_point(|&e| e <= last);
                scratch.ext.extend_from_slice(&filtered_f1[from..]);
            }
            for ext_idx in 0..scratch.ext.len() {
                let ek = scratch.ext[ext_idx];
                let ek_entry = hlh1.entry(ek).expect("extension labels come from HLH_1");
                intersect_into(
                    &mut scratch.group_support,
                    &group_entry.support,
                    &ek_entry.support,
                );
                if scratch.group_support.is_empty() {
                    continue;
                }
                if apriori && !self.config.is_candidate(scratch.group_support.len()) {
                    continue;
                }
                let mut group_id: Option<GroupId> = None;
                // Interning-key prefix shared by every pattern of this
                // (group, E_k) combination: the packed new-group events.
                scratch.key.clear();
                scratch
                    .key
                    .extend(group_events.iter().copied().map(encode_label));
                scratch.key.push(encode_label(ek));
                let events_len = scratch.key.len();
                // Verdict-table pair handles, one per member (every member
                // label is smaller than E_k, matching the recorded order).
                member_pairs.clear();
                for &member in group_events {
                    member_pairs.push(verdicts.pair(member, ek));
                }

                for &pid in &group_entry.patterns {
                    let pattern_entry = prev.pattern(pid);
                    // The base pattern's canonical triples are a shared
                    // prefix too: new triples all involve the (largest) new
                    // event index, so they sort after every base triple.
                    scratch.key.truncate(events_len);
                    scratch.key.extend(
                        pattern_entry
                            .pattern
                            .triples()
                            .iter()
                            .copied()
                            .map(encode_triple),
                    );
                    let base_len = scratch.key.len();
                    intersect_positions_into(
                        &pattern_entry.support,
                        &ek_entry.support,
                        &mut scratch.support,
                        &mut scratch.pos_a,
                        &mut scratch.pos_b,
                    );
                    for m in 0..scratch.support.len() {
                        let granule = scratch.support[m];
                        let ek_instances = ek_entry.instances_at_index(scratch.pos_b[m] as usize);
                        debug_assert!(!ek_instances.is_empty(), "support implies instances");
                        let cols = ek_instances.len();
                        // Resolve each member's verdict block and HLH_1
                        // instance slice once per granule.
                        member_blocks.clear();
                        for (idx, entry) in member_entries.iter().enumerate() {
                            member_blocks.push(member_pairs[idx].and_then(|pair| {
                                let block = pair.block(granule)?;
                                let instances = entry.instances_at(granule);
                                debug_assert_eq!(
                                    block.len(),
                                    instances.len() * cols,
                                    "verdict blocks cover the full cross-product"
                                );
                                Some((block, instances))
                            }));
                        }
                        // A member whose verdict block holds no relation at
                        // all at this granule vetoes every binding × E_k
                        // instance below — one wide byte scan per block
                        // (the dispatched kernel) decides before any
                        // binding is enumerated. Uncovered members
                        // (`None`) fall back to the classifier and cannot
                        // be skipped.
                        if member_blocks.iter().any(
                            |blk| matches!(blk, Some((block, _)) if !kernels.verdict_any(block)),
                        ) {
                            continue;
                        }
                        for &bid in pattern_entry.binding_ids_at_index(scratch.pos_a[m] as usize) {
                            let binding = prev.binding(bid);
                            // Resolve each member instance's verdict row for
                            // this binding (instances per granule are few,
                            // so the position scan is one or two compares).
                            binding_rows.clear();
                            for (idx, bound) in binding.iter().enumerate() {
                                binding_rows.push(member_blocks[idx].and_then(
                                    |(block, instances)| {
                                        let row = instances.iter().position(|x| x == bound)?;
                                        Some(&block[row * cols..(row + 1) * cols])
                                    },
                                ));
                            }
                            'instances: for (ek_idx, ek_instance) in ek_instances.iter().enumerate()
                            {
                                if binding.contains(ek_instance) {
                                    continue;
                                }
                                scratch.triples.clear();
                                scratch.key.truncate(base_len);
                                for (idx, bound) in binding.iter().enumerate() {
                                    let idx_u8 = u8::try_from(idx).expect("pattern length fits u8");
                                    let triple = match binding_rows[idx] {
                                        Some(row) => {
                                            counters.classifier_calls_saved += 1;
                                            let triple = decode_verdict(row[ek_idx]).map(
                                                |(kind, swapped)| {
                                                    if swapped {
                                                        RelationTriple::new(kind, new_index, idx_u8)
                                                    } else {
                                                        RelationTriple::new(kind, idx_u8, new_index)
                                                    }
                                                },
                                            );
                                            debug_assert_eq!(
                                                triple,
                                                self.classify_instance_pair(
                                                    bound,
                                                    ek_instance,
                                                    idx_u8,
                                                    new_index
                                                ),
                                                "verdict table diverged from the classifier"
                                            );
                                            triple
                                        }
                                        None => self.classify_instance_pair(
                                            bound,
                                            ek_instance,
                                            idx_u8,
                                            new_index,
                                        ),
                                    };
                                    match triple {
                                        Some(t) => {
                                            scratch.triples.push(t);
                                            scratch.key.push(encode_triple(t));
                                        }
                                        None => continue 'instances,
                                    }
                                }
                                let group = match group_id {
                                    Some(g) => g,
                                    None => {
                                        let events: Vec<EventLabel> = group_events
                                            .iter()
                                            .copied()
                                            .chain(std::iter::once(ek))
                                            .collect();
                                        let g = hlhk
                                            .insert_group(events, scratch.group_support.clone());
                                        group_id = Some(g);
                                        g
                                    }
                                };
                                hlhk.add_pattern_occurrence(
                                    group,
                                    &scratch.key,
                                    || pattern_entry.pattern.extended(ek, scratch.triples.clone()),
                                    granule,
                                    binding,
                                    *ek_instance,
                                );
                            }
                        }
                    }
                }
            }
        }
        (hlhk, counters)
    }

    /// The closed-form relation classification of one (binding-member,
    /// extension-instance) pair — the verdict-table fallback and the
    /// debug-build cross-check.
    // lint: hot-path
    fn classify_instance_pair(
        &self,
        bound: &EventInstance,
        ek_instance: &EventInstance,
        idx: u8,
        new_index: u8,
    ) -> Option<RelationTriple> {
        let in_order = chronological_order(&bound.interval, &ek_instance.interval, idx, new_index);
        if in_order {
            classify_relation(
                &bound.interval,
                &ek_instance.interval,
                self.config.epsilon,
                self.config.min_overlap,
            )
            .map(|r| RelationTriple::new(r, idx, new_index))
        } else {
            classify_relation(
                &ek_instance.interval,
                &bound.interval,
                self.config.epsilon,
                self.config.min_overlap,
            )
            .map(|r| RelationTriple::new(r, new_index, idx))
        }
    }
}

/// Flat triangular index of the first pair of row `row` (the number of pairs
/// in rows `0..row` of an `n`-event triangle).
// lint: hot-path
fn pair_offset(n: usize, row: usize) -> usize {
    row * n - row * (row + 1) / 2
}

/// Yields the candidate event pairs `(f1[i], f1[j])`, `i < j`, whose flat
/// triangular indices fall in `range`, in the row-major order the sequential
/// miner enumerates them — without materializing the full pair list. The
/// flat index of pair `(i, j)` is [`pair_offset`]`(n, i) + (j - i - 1)`.
// lint: hot-path
fn pair_range(
    f1: &[EventLabel],
    range: Range<usize>,
) -> impl Iterator<Item = (EventLabel, EventLabel)> + '_ {
    let n = f1.len();
    // Locate the (row, column) of range.start by walking the triangle rows.
    let mut i = 0usize;
    let mut row_start = 0usize; // flat index of pair (i, i + 1)
    while i < n && row_start + (n - i - 1) <= range.start {
        row_start += n - i - 1;
        i += 1;
    }
    let mut j = i + 1 + (range.start - row_start);
    let mut remaining = range.len();
    std::iter::from_fn(move || {
        if remaining == 0 {
            return None;
        }
        while j >= n {
            i += 1;
            if i + 1 >= n {
                // Only reachable when the caller asked for more pairs than
                // the triangle holds — the ranges cut by `pair_offset` always
                // end on or before the last row. Assert instead of silently
                // truncating the enumeration.
                debug_assert!(
                    remaining == 0,
                    "pair_range walked past the end of the triangle \
                     ({remaining} pairs still requested)"
                );
                return None;
            }
            j = i + 1;
        }
        let pair = (f1[i], f1[j]);
        j += 1;
        remaining -= 1;
        Some(pair)
    })
}

/// Cuts `costs.len()` work items into at most `threads` contiguous,
/// non-empty ranges whose cumulative costs are as even as a greedy
/// left-to-right walk can make them. Contiguity is what lets the per-shard
/// results be merged back in order (also reused by the streaming miner to
/// shard an appended granule batch).
pub(crate) fn balanced_ranges(costs: &[u64], threads: usize) -> Vec<Range<usize>> {
    let total: u64 = costs.iter().sum();
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut spent = 0u64;
    for t in 0..threads {
        if start >= costs.len() {
            break;
        }
        // Remaining shards must each get at least one item.
        let max_end = costs.len() - (threads - t - 1).min(costs.len() - start - 1);
        let target = (total * (t as u64 + 1)).div_ceil(threads as u64);
        let mut end = start + 1;
        spent += costs[start];
        while end < max_end && spent + costs[end] / 2 < target {
            spent += costs[end];
            end += 1;
        }
        ranges.push(start..end);
        start = end;
    }
    if let (Some(last), true) = (ranges.last_mut(), start < costs.len()) {
        last.end = costs.len();
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PruningMode, Threshold};
    use crate::relation::RelationKind;
    use std::collections::BTreeSet;
    use stpm_timeseries::{Alphabet, SymbolicDatabase, SymbolicSeries};

    /// Builds the full running example of the paper (Table II / Table IV):
    /// five appliance series at 5-minute granularity, 42 instants, mapped to
    /// 14 granules of 15 minutes.
    fn paper_dseq() -> (SymbolicDatabase, SequenceDatabase) {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let rows: &[(&str, &str)] = &[
            ("C", "110100110000000000111111000000100110000110"),
            ("D", "100100110110000000111111000000100100110110"),
            ("F", "001011001001111000000000111111001001001001"),
            ("M", "111100111110111111000111111111111000111000"),
            ("N", "110111111110111111000000111111111111111000"),
        ];
        let series: Vec<SymbolicSeries> = rows
            .iter()
            .map(|(name, bits)| {
                let labels: Vec<&str> = bits
                    .chars()
                    .map(|c| if c == '1' { "1" } else { "0" })
                    .collect();
                SymbolicSeries::from_labels(name, &labels, alphabet.clone()).unwrap()
            })
            .collect();
        let dsyb = SymbolicDatabase::new(series).unwrap();
        let dseq = dsyb.to_sequence_database(3).unwrap();
        (dsyb, dseq)
    }

    fn paper_config() -> StpmConfig {
        StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(2),
            dist_interval: (3, 10),
            min_season: 2,
            max_pattern_len: 3,
            ..StpmConfig::default()
        }
    }

    #[test]
    fn mining_the_paper_example_finds_c1_contains_d1() {
        let (dsyb, dseq) = paper_dseq();
        let report = StpmMiner::mine_sequences(&dseq, &paper_config()).unwrap();

        let c1 = dsyb.registry().label("C", "1").unwrap();
        let d1 = dsyb.registry().label("D", "1").unwrap();
        let target = TemporalPattern::pair([c1, d1], RelationKind::Contains, false);
        let found = report
            .patterns()
            .iter()
            .find(|p| p.pattern() == &target)
            .expect("C:1 contains D:1 must be a frequent seasonal pattern");
        assert_eq!(found.support(), &[1, 2, 3, 7, 8, 11, 12, 14]);
        assert!(found.seasons().count() >= 2);
    }

    #[test]
    fn single_event_m1_is_not_frequent_but_participates_in_patterns() {
        // The anti-monotonicity counter-example of Section IV-B: M:1 alone is
        // not seasonal (one long season), yet M:1 ≽ N:1 is.
        let (dsyb, dseq) = paper_dseq();
        let config = StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(3),
            dist_interval: (4, 10),
            min_season: 2,
            max_pattern_len: 2,
            ..StpmConfig::default()
        };
        let report = StpmMiner::mine_sequences(&dseq, &config).unwrap();

        let m1 = dsyb.registry().label("M", "1").unwrap();
        let n1 = dsyb.registry().label("N", "1").unwrap();
        assert!(
            !report.events().iter().any(|e| e.label == m1),
            "M:1 must not be a frequent seasonal single event"
        );
        let target = TemporalPattern::pair([m1, n1], RelationKind::Contains, false);
        assert!(
            report.contains_pattern(&target),
            "M:1 contains N:1 must be frequent"
        );
    }

    #[test]
    fn report_contains_three_event_patterns() {
        let (_, dseq) = paper_dseq();
        let report = StpmMiner::mine_sequences(&dseq, &paper_config()).unwrap();
        assert!(
            !report.patterns_of_len(3).is_empty(),
            "the example database contains frequent 3-event patterns"
        );
        // Every 3-event pattern has 3 relation triples.
        for p in report.patterns_of_len(3) {
            assert_eq!(p.pattern().triples().len(), 3);
        }
    }

    #[test]
    fn all_pruning_modes_find_the_same_frequent_patterns() {
        // The prunings are exact: they shrink the search space but never the
        // output (completeness of E-STPM).
        let (_, dseq) = paper_dseq();
        let mut outputs: Vec<BTreeSet<String>> = Vec::new();
        for mode in PruningMode::all_modes() {
            let config = paper_config().with_pruning(mode);
            let report = StpmMiner::mine_sequences(&dseq, &config).unwrap();
            let set: BTreeSet<String> = report
                .patterns()
                .iter()
                .map(|p| format!("{:?}", p.pattern()))
                .chain(report.events().iter().map(|e| format!("{:?}", e.label)))
                .collect();
            outputs.push(set);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
        assert_eq!(outputs[2], outputs[3]);
        assert!(!outputs[0].is_empty());
    }

    #[test]
    fn pruning_shrinks_candidate_counts() {
        let (_, dseq) = paper_dseq();
        let full = StpmMiner::mine_sequences(&dseq, &paper_config().with_pruning(PruningMode::All))
            .unwrap();
        let none =
            StpmMiner::mine_sequences(&dseq, &paper_config().with_pruning(PruningMode::NoPrune))
                .unwrap();
        assert!(full.stats().total_candidate_patterns() <= none.stats().total_candidate_patterns());
        assert!(full.stats().candidate_events <= none.stats().candidate_events);
    }

    #[test]
    fn stats_are_populated() {
        let (_, dseq) = paper_dseq();
        let report = StpmMiner::mine_sequences(&dseq, &paper_config()).unwrap();
        let stats = report.stats();
        assert_eq!(stats.num_granules, 14);
        assert_eq!(stats.num_events, 10);
        assert!(stats.candidate_events > 0);
        assert!(stats.peak_footprint_bytes > 0);
        assert!(!stats.levels.is_empty());
        assert_eq!(stats.levels[0].k, 2);
        assert!(stats.total_frequent_patterns() > 0);
    }

    #[test]
    fn max_pattern_len_one_mines_only_events() {
        let (_, dseq) = paper_dseq();
        let config = StpmConfig {
            max_pattern_len: 1,
            ..paper_config()
        };
        let report = StpmMiner::mine_sequences(&dseq, &config).unwrap();
        assert!(report.patterns().is_empty());
        assert!(!report.events().is_empty());
    }

    #[test]
    fn strict_thresholds_yield_empty_output() {
        let (_, dseq) = paper_dseq();
        let config = StpmConfig {
            max_period: Threshold::Absolute(1),
            min_density: Threshold::Absolute(10),
            dist_interval: (1, 2),
            min_season: 5,
            ..paper_config()
        };
        let report = StpmMiner::mine_sequences(&dseq, &config).unwrap();
        assert!(report.patterns().is_empty());
        assert!(report.events().is_empty());
    }

    #[test]
    fn epsilon_widens_or_preserves_the_output() {
        let (_, dseq) = paper_dseq();
        let strict = StpmMiner::mine_sequences(&dseq, &paper_config().with_epsilon(0)).unwrap();
        let tolerant = StpmMiner::mine_sequences(&dseq, &paper_config().with_epsilon(1)).unwrap();
        // With ε the relation classifier merges near-boundary cases; the
        // number of *distinct* patterns may change, but mining must still
        // succeed and find the headline pattern.
        assert!(strict.total_patterns() > 0);
        assert!(tolerant.total_patterns() > 0);
    }

    #[test]
    fn resolved_entry_point_matches_the_resolving_one() {
        let (_, dseq) = paper_dseq();
        let config = paper_config();
        let resolved = config.resolve(dseq.num_granules()).unwrap();
        let a = StpmMiner::mine_sequences(&dseq, &config).unwrap();
        let b = StpmMiner::mine_sequences_resolved(&dseq, &resolved);
        assert_eq!(a.patterns().len(), b.patterns().len());
        assert_eq!(a.events().len(), b.events().len());
    }

    #[test]
    fn parallel_mining_is_identical_to_sequential() {
        // The sharded parallel path must be byte-identical to the sequential
        // one: same patterns, same order, same stats counters.
        let (_, dseq) = paper_dseq();
        for mode in PruningMode::all_modes() {
            let sequential =
                StpmMiner::mine_sequences(&dseq, &paper_config().with_pruning(mode)).unwrap();
            for threads in [2, 4, 7] {
                let parallel = StpmMiner::mine_sequences(
                    &dseq,
                    &paper_config().with_pruning(mode).with_threads(threads),
                )
                .unwrap();
                assert_eq!(parallel.patterns(), sequential.patterns());
                assert_eq!(parallel.events(), sequential.events());
                assert_eq!(
                    parallel.stats().levels,
                    sequential.stats().levels,
                    "level stats diverged with {threads} threads under {mode:?}"
                );
                assert_eq!(
                    parallel.stats().peak_footprint_bytes,
                    sequential.stats().peak_footprint_bytes
                );
            }
        }
    }

    fn assert_partition(ranges: &[Range<usize>], len: usize, max_shards: usize) {
        assert!(!ranges.is_empty());
        assert!(ranges.len() <= max_shards);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, len);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "ranges must be contiguous");
        }
        for range in ranges {
            assert!(!range.is_empty());
        }
    }

    #[test]
    fn pair_range_matches_naive_triangular_enumeration() {
        use stpm_timeseries::{SeriesId, SymbolId};
        for n in [0usize, 1, 2, 3, 5, 8] {
            let f1: Vec<EventLabel> = (0..n)
                .map(|i| EventLabel::new(SeriesId(i as u32), SymbolId(0)))
                .collect();
            let naive: Vec<(EventLabel, EventLabel)> = f1
                .iter()
                .enumerate()
                .flat_map(|(i, &ei)| f1.iter().skip(i + 1).map(move |&ej| (ei, ej)))
                .collect();
            let num_pairs = n * n.saturating_sub(1) / 2;
            assert_eq!(naive.len(), num_pairs);
            // The full range reproduces the enumeration; every sub-range is
            // the matching slice of it.
            let full: Vec<_> = pair_range(&f1, 0..num_pairs).collect();
            assert_eq!(full, naive);
            for start in 0..=num_pairs {
                for end in start..=num_pairs {
                    let sub: Vec<_> = pair_range(&f1, start..end).collect();
                    assert_eq!(sub, naive[start..end], "n={n} range={start}..{end}");
                }
            }
        }
    }

    #[test]
    fn pair_range_ending_on_the_last_triangle_row_is_complete() {
        use stpm_timeseries::{SeriesId, SymbolId};
        // n = 5 → 10 pairs; the last row holds the single pair (3, 4) at
        // flat index 9. Ranges that end exactly on the triangle's last row
        // (or exactly at its end) must enumerate every requested pair — the
        // pre-fix code could bail out of the row walk with pairs still
        // pending, silently truncating the shard.
        let f1: Vec<EventLabel> = (0..5)
            .map(|i| EventLabel::new(SeriesId(i as u32), SymbolId(0)))
            .collect();
        let full: Vec<_> = pair_range(&f1, 0..10).collect();
        assert_eq!(full.len(), 10);
        assert_eq!(full[9], (f1[3], f1[4]));
        // A range starting mid-triangle and ending exactly at the end.
        let tail: Vec<_> = pair_range(&f1, 7..10).collect();
        assert_eq!(tail, &full[7..10]);
        // A range that ends exactly on a row boundary (end of row 1 = flat
        // index 7) crosses the row-advance path on its final pair.
        let boundary: Vec<_> = pair_range(&f1, 4..7).collect();
        assert_eq!(boundary, &full[4..7]);
        // The last single-pair range alone.
        let last: Vec<_> = pair_range(&f1, 9..10).collect();
        assert_eq!(last, vec![(f1[3], f1[4])]);
    }

    #[test]
    fn balanced_ranges_cut_uniform_costs_evenly() {
        let ranges = balanced_ranges(&[1; 8], 4);
        assert_eq!(ranges, vec![0..2, 2..4, 4..6, 6..8]);
        assert_partition(&ranges, 8, 4);
    }

    #[test]
    fn balanced_ranges_isolate_heavy_items() {
        let costs = [1, 1, 1, 100, 1, 1, 1, 1];
        let ranges = balanced_ranges(&costs, 3);
        assert_partition(&ranges, costs.len(), 3);
        // The 100-cost item gets a shard of its own instead of dragging its
        // neighbours along.
        assert!(ranges.contains(&(3..4)));
    }

    #[test]
    fn balanced_ranges_cover_degenerate_inputs() {
        assert_partition(&balanced_ranges(&[5], 4), 1, 4);
        assert_partition(&balanced_ranges(&[0, 0, 0], 2), 3, 2);
        assert_partition(
            &balanced_ranges(&[3, 9, 2, 7, 1, 1, 4, 2, 8, 6], 10),
            10,
            10,
        );
        assert_partition(&balanced_ranges(&[3, 9, 2], 1), 3, 1);
    }

    #[test]
    fn more_threads_than_work_items_is_harmless() {
        let (_, dseq) = paper_dseq();
        let sequential = StpmMiner::mine_sequences(&dseq, &paper_config()).unwrap();
        let oversubscribed =
            StpmMiner::mine_sequences(&dseq, &paper_config().with_threads(1024)).unwrap();
        assert_eq!(oversubscribed.patterns(), sequential.patterns());
    }

    #[test]
    fn relation_less_pairs_do_not_count_as_candidate_groups() {
        // A and B co-occur in every granule, but their instances only overlap
        // by 2 instants while d_o = 3, so no relation ever classifies. The
        // pair must not be registered as a level-2 candidate group (lazy
        // registration), even with retain_candidates disabled (NoPrune).
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let a = SymbolicSeries::from_labels(
            "A",
            &["1", "1", "1", "0", "1", "1", "1", "0"],
            alphabet.clone(),
        )
        .unwrap();
        let b =
            SymbolicSeries::from_labels("B", &["0", "1", "1", "1", "0", "1", "1", "1"], alphabet)
                .unwrap();
        let dseq = SymbolicDatabase::new(vec![a, b])
            .unwrap()
            .to_sequence_database(4)
            .unwrap();
        let config = StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(1),
            dist_interval: (1, 10),
            min_season: 1,
            min_overlap: 3,
            max_pattern_len: 2,
            pruning: PruningMode::NoPrune,
            ..StpmConfig::default()
        };
        // Six event pairs share support; every pair except {A:1, B:1}
        // classifies through Follows/Contains (one pattern each), while
        // {A:1, B:1} can only classify through Overlaps. With d_o = 3 it
        // classifies nothing and must not be registered as a group.
        let report = StpmMiner::mine_sequences(&dseq, &config).unwrap();
        let level2 = report.stats().levels[0];
        assert_eq!(level2.candidate_patterns, 5);
        assert_eq!(
            level2.candidate_groups, 5,
            "a group without a single candidate pattern must not be counted"
        );
        assert_eq!(
            level2.candidate_groups, level2.candidate_patterns,
            "every registered group carries at least one candidate pattern"
        );

        // Lowering d_o back to 1 makes A:1 ≬ B:1 classify: the pair counts.
        let relaxed = StpmConfig {
            min_overlap: 1,
            ..config
        };
        let report = StpmMiner::mine_sequences(&dseq, &relaxed).unwrap();
        let level2 = report.stats().levels[0];
        assert_eq!(level2.candidate_patterns, 6);
        assert_eq!(level2.candidate_groups, 6);
    }

    #[test]
    fn peak_footprint_tracks_live_levels_not_their_sum() {
        // With max_pattern_len = 3 the live set is at most
        // HLH_1 + HLH_2 + HLH_3, so the peak is bounded by the sum of the
        // level footprints and must be at least the largest live set.
        let (_, dseq) = paper_dseq();
        let report = StpmMiner::mine_sequences(&dseq, &paper_config()).unwrap();
        let stats = report.stats();
        let level_sum: usize = stats.levels.iter().map(|l| l.footprint_bytes).sum();
        assert!(stats.peak_footprint_bytes > 0);
        // hlh1 + the adjacency matrix + all levels is the historical sum the
        // old accounting reported; the live peak can never exceed it. The
        // adjacency matrix is bounded by one bit row plus one label per
        // candidate event.
        let resolved = paper_config().resolve(dseq.num_granules()).unwrap();
        let hlh1 = Hlh1::build(&dseq, &resolved, true);
        let n = hlh1.len();
        let adjacency_bound =
            n * std::mem::size_of::<EventLabel>() + n * n.div_ceil(64) * std::mem::size_of::<u64>();
        assert!(stats.peak_footprint_bytes <= hlh1.footprint_bytes() + level_sum + adjacency_bound);
        assert!(stats.peak_footprint_bytes >= hlh1.footprint_bytes());
    }

    #[test]
    fn engine_trait_wraps_the_exact_miner() {
        use crate::engine::accuracy;
        let (dsyb, dseq) = paper_dseq();
        let input = MiningInput::new(&dsyb, &dseq, 3);
        let engine: &dyn MiningEngine = &StpmMiner;
        assert_eq!(engine.name(), "E-STPM");
        let report = engine.mine_with(&input, &paper_config()).unwrap();
        let direct = StpmMiner::mine_sequences(&dseq, &paper_config()).unwrap();
        assert_eq!(report.total_patterns(), direct.total_patterns());
        assert_eq!(report.pruning().pruned_series.len(), 0);
        assert_eq!(report.pruning().kept_series.len(), 5);
        assert!(report.phase_time(phases::SINGLE_EVENTS) <= report.total_time());
        assert!(report.memory_bytes() > 0);
        assert!((accuracy(&report, &report) - 100.0).abs() < 1e-12);
        assert!(!report.pattern_set().is_empty());
    }
}
