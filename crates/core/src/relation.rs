//! Temporal relations between event instances (Section III-C, Table III).
//!
//! Three Allen-style relations are used: *Follows* (→), *Contains* (≽) and
//! *Overlaps* (≬). The exact-endpoint-matching problem of Allen's relations
//! is avoided with a tolerance buffer ε; a minimal overlapping duration
//! `d_o` keeps Overlaps meaningful. The classifier below is a deterministic
//! decision chain, so the relations are mutually exclusive by construction
//! (Property 1 of the paper's appendix).

use std::fmt;
use stpm_timeseries::Interval;

/// The three temporal relations of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RelationKind {
    /// `E_i → E_j`: the first event ends (within ε) before the second starts.
    Follows,
    /// `E_i ≽ E_j`: the first event's interval contains the second's
    /// (endpoints compared with ε tolerance).
    Contains,
    /// `E_i ≬ E_j`: the first event starts earlier, ends earlier, and the two
    /// intervals share at least `d_o` granules.
    Overlaps,
}

impl RelationKind {
    /// The three kinds in a fixed order (used when enumerating the search
    /// space, Section IV-D).
    #[must_use]
    pub fn all() -> [RelationKind; 3] {
        [
            RelationKind::Follows,
            RelationKind::Contains,
            RelationKind::Overlaps,
        ]
    }

    /// The symbol the paper uses for the relation.
    #[must_use]
    pub fn symbol(&self) -> &'static str {
        match self {
            RelationKind::Follows => "\u{2192}",  // →
            RelationKind::Contains => "\u{227d}", // ≽
            RelationKind::Overlaps => "\u{226c}", // ≬
        }
    }
}

impl fmt::Display for RelationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationKind::Follows => write!(f, "Follows"),
            RelationKind::Contains => write!(f, "Contains"),
            RelationKind::Overlaps => write!(f, "Overlaps"),
        }
    }
}

/// Classifies the temporal relation between two event instances whose
/// intervals are `first` and `second`, where `first` is the chronologically
/// earlier instance (callers must order the pair with [`chronological_order`]
/// or equivalent). Returns `None` when none of the three relations holds
/// (e.g. an overlap shorter than `d_o`).
///
/// * `epsilon` — tolerance buffer ε on the first interval's end point.
/// * `min_overlap` — minimal overlapping duration `d_o` (granules).
#[must_use]
pub fn classify_relation(
    first: &Interval,
    second: &Interval,
    epsilon: u64,
    min_overlap: u64,
) -> Option<RelationKind> {
    debug_assert!(
        first.start <= second.start,
        "caller must pass intervals in chronological order"
    );
    // Contains: ts_i <= ts_j ∧ te_i ± ε >= te_j.
    if first.start <= second.start && first.end + epsilon >= second.end {
        return Some(RelationKind::Contains);
    }
    // Follows: te_i ± ε <= ts_j. With inclusive granule intervals a shared
    // boundary granule (te_i == ts_j) counts as "meets", classified Follows.
    if first.end <= second.start + epsilon {
        return Some(RelationKind::Follows);
    }
    // Overlaps: ts_i < ts_j ∧ te_i ± ε < te_j ∧ overlap >= d_o.
    if first.start < second.start && first.end < second.end + epsilon {
        let overlap = first.overlap_len(second);
        if overlap >= min_overlap.max(1) {
            return Some(RelationKind::Overlaps);
        }
    }
    None
}

/// Packs one instance-pair classification outcome into a byte for the level-2
/// verdict table: `0` encodes "no relation", otherwise the relation kind and
/// whether the pair had to be *swapped* into chronological order (the second
/// event's instance is the earlier one).
#[inline]
#[must_use]
pub fn encode_verdict(kind: RelationKind, swapped: bool) -> u8 {
    1 + (((kind as u8) << 1) | u8::from(swapped))
}

/// Byte of [`encode_verdict`] for "none of the three relations holds".
pub const VERDICT_NONE: u8 = 0;

/// Unpacks a byte of [`encode_verdict`]. `None` is the "no relation" verdict.
///
/// # Panics
/// Panics on bytes outside the encoding domain (`0..=6`) — the table is only
/// ever filled through [`encode_verdict`], so an out-of-domain byte is a
/// construction bug.
#[inline]
#[must_use]
pub fn decode_verdict(verdict: u8) -> Option<(RelationKind, bool)> {
    if verdict == VERDICT_NONE {
        return None;
    }
    let bits = verdict - 1;
    let kind = match bits >> 1 {
        0 => RelationKind::Follows,
        1 => RelationKind::Contains,
        2 => RelationKind::Overlaps,
        _ => unreachable!("verdict byte {verdict} is outside the encoding domain"),
    };
    Some((kind, bits & 1 == 1))
}

/// Orders two instances chronologically: by start, then by *descending*
/// duration (so a containing interval precedes the contained one when they
/// share a start), then by the tie-break key. Returns `true` when the pair is
/// already in order, `false` when it must be swapped.
#[must_use]
pub fn chronological_order<K: Ord>(a: &Interval, b: &Interval, key_a: K, key_b: K) -> bool {
    (a.start, std::cmp::Reverse(a.end), key_a) <= (b.start, std::cmp::Reverse(b.end), key_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn follows_when_disjoint() {
        assert_eq!(
            classify_relation(&iv(1, 3), &iv(5, 8), 0, 1),
            Some(RelationKind::Follows)
        );
    }

    #[test]
    fn meets_counts_as_follows() {
        // Adjacent intervals sharing no granule.
        assert_eq!(
            classify_relation(&iv(1, 3), &iv(4, 6), 0, 1),
            Some(RelationKind::Follows)
        );
    }

    #[test]
    fn contains_strict_and_equal() {
        assert_eq!(
            classify_relation(&iv(1, 10), &iv(3, 7), 0, 1),
            Some(RelationKind::Contains)
        );
        // Identical intervals: Contains (the paper's Table IV pattern C:1 ≽ D:1
        // counts granules where both run over the same interval).
        assert_eq!(
            classify_relation(&iv(4, 4), &iv(4, 4), 0, 1),
            Some(RelationKind::Contains)
        );
        // Shared start, first longer.
        assert_eq!(
            classify_relation(&iv(1, 5), &iv(1, 3), 0, 1),
            Some(RelationKind::Contains)
        );
    }

    #[test]
    fn overlaps_requires_minimum_duration() {
        // Overlap of 3 granules (G3..G5).
        assert_eq!(
            classify_relation(&iv(1, 5), &iv(3, 8), 0, 1),
            Some(RelationKind::Overlaps)
        );
        assert_eq!(
            classify_relation(&iv(1, 5), &iv(3, 8), 0, 3),
            Some(RelationKind::Overlaps)
        );
        // d_o = 4 > actual overlap 3: no relation.
        assert_eq!(classify_relation(&iv(1, 5), &iv(3, 8), 0, 4), None);
    }

    #[test]
    fn epsilon_extends_containment() {
        // Without tolerance this is an overlap; with ε = 1 the first interval
        // is considered to reach te_j, i.e. Contains.
        assert_eq!(
            classify_relation(&iv(1, 7), &iv(3, 8), 0, 1),
            Some(RelationKind::Overlaps)
        );
        assert_eq!(
            classify_relation(&iv(1, 7), &iv(3, 8), 1, 1),
            Some(RelationKind::Contains)
        );
    }

    #[test]
    fn epsilon_extends_follows() {
        // Two shared granules: an overlap at ε = 0, but with ε = 1 the first
        // instance is considered to end (within tolerance) before the second
        // starts, i.e. Follows.
        assert_eq!(
            classify_relation(&iv(1, 5), &iv(4, 9), 0, 1),
            Some(RelationKind::Overlaps)
        );
        assert_eq!(
            classify_relation(&iv(1, 5), &iv(4, 9), 1, 1),
            Some(RelationKind::Follows)
        );
    }

    #[test]
    fn shared_boundary_granule_is_follows_per_paper_formula() {
        // te_i == ts_j satisfies the paper's Follows condition te_i ± ε <= ts_j.
        assert_eq!(
            classify_relation(&iv(1, 4), &iv(4, 9), 0, 1),
            Some(RelationKind::Follows)
        );
    }

    #[test]
    fn relations_are_mutually_exclusive() {
        // Exhaustive sweep over small intervals: the classifier returns at
        // most one relation per ordered pair by construction, and never
        // panics.
        for s1 in 1..6u64 {
            for e1 in s1..7u64 {
                for s2 in s1..7u64 {
                    for e2 in s2..8u64 {
                        let a = iv(s1, e1);
                        let b = iv(s2, e2);
                        if !chronological_order(&a, &b, 0, 1) {
                            continue;
                        }
                        let _ = classify_relation(&a, &b, 0, 1);
                        let _ = classify_relation(&a, &b, 1, 2);
                    }
                }
            }
        }
    }

    #[test]
    fn paper_table_iv_h1_relations() {
        // H1 of Table IV: C:1 [G1,G2], D:1 [G1,G1], M:1 [G1,G3], F:1 [G3,G3].
        // C:1 contains D:1, M:1 contains C:1, C:1 followed by F:1.
        assert_eq!(
            classify_relation(&iv(1, 2), &iv(1, 1), 0, 1),
            Some(RelationKind::Contains)
        );
        assert_eq!(
            classify_relation(&iv(1, 3), &iv(1, 2), 0, 1),
            Some(RelationKind::Contains)
        );
        assert_eq!(
            classify_relation(&iv(1, 2), &iv(3, 3), 0, 1),
            Some(RelationKind::Follows)
        );
    }

    #[test]
    fn chronological_ordering_rules() {
        // Earlier start first.
        assert!(chronological_order(&iv(1, 2), &iv(3, 4), 0, 0));
        assert!(!chronological_order(&iv(3, 4), &iv(1, 2), 0, 0));
        // Same start: longer (containing) interval first.
        assert!(chronological_order(&iv(1, 5), &iv(1, 2), 0, 0));
        assert!(!chronological_order(&iv(1, 2), &iv(1, 5), 0, 0));
        // Identical intervals: tie-break key decides.
        assert!(chronological_order(&iv(1, 2), &iv(1, 2), 0, 1));
        assert!(!chronological_order(&iv(1, 2), &iv(1, 2), 1, 0));
    }

    #[test]
    fn verdict_encoding_round_trips() {
        assert_eq!(decode_verdict(VERDICT_NONE), None);
        let mut seen = std::collections::BTreeSet::new();
        for kind in RelationKind::all() {
            for swapped in [false, true] {
                let byte = encode_verdict(kind, swapped);
                assert!(byte != VERDICT_NONE);
                assert!(seen.insert(byte), "verdict bytes must be distinct");
                assert_eq!(decode_verdict(byte), Some((kind, swapped)));
            }
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn display_and_symbols() {
        assert_eq!(RelationKind::Follows.to_string(), "Follows");
        assert_eq!(RelationKind::Contains.to_string(), "Contains");
        assert_eq!(RelationKind::Overlaps.to_string(), "Overlaps");
        assert_eq!(RelationKind::all().len(), 3);
        assert_eq!(RelationKind::Contains.symbol(), "≽");
    }
}
