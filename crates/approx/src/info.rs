//! Entropy, conditional entropy, mutual information and normalised mutual
//! information over symbolic time series (Definitions 5.1–5.3).

use stpm_timeseries::stats::{entropy, JointDistribution};
use stpm_timeseries::{SeriesId, SymbolicDatabase, SymbolicSeries};

/// Shannon entropy `H(X_S)` (base 2) of a symbolic series (Definition 5.1).
#[must_use]
pub fn entropy_of(series: &SymbolicSeries) -> f64 {
    entropy(&series.symbol_probabilities())
}

/// Conditional entropy `H(X_S | Y_S)` (Definition 5.1, Equation 3).
#[must_use]
pub fn conditional_entropy(x: &SymbolicSeries, y: &SymbolicSeries) -> f64 {
    let dist = JointDistribution::estimate(x, y);
    let mut h = 0.0;
    for (_, yj, p_xy) in dist.iter() {
        if p_xy > 0.0 {
            let p_y = dist.marginal_y()[yj];
            if p_y > 0.0 {
                h -= p_xy * (p_xy / p_y).log2();
            }
        }
    }
    h
}

/// Mutual information `I(X_S; Y_S)` (Definition 5.2, Equation 4).
#[must_use]
pub fn mutual_information(x: &SymbolicSeries, y: &SymbolicSeries) -> f64 {
    let dist = JointDistribution::estimate(x, y);
    let mut mi = 0.0;
    for (xi, yj, p_xy) in dist.iter() {
        if p_xy > 0.0 {
            let p_x = dist.marginal_x()[xi];
            let p_y = dist.marginal_y()[yj];
            if p_x > 0.0 && p_y > 0.0 {
                mi += p_xy * (p_xy / (p_x * p_y)).log2();
            }
        }
    }
    mi.max(0.0)
}

/// Normalised mutual information `Ĩ(X_S; Y_S) = I(X_S;Y_S) / H(X_S)`
/// (Definition 5.3, Equation 5). Not symmetric. A deterministic (zero
/// entropy) first series yields 0 — it cannot gain information.
#[must_use]
pub fn normalized_mi(x: &SymbolicSeries, y: &SymbolicSeries) -> f64 {
    let h = entropy_of(x);
    if h <= f64::EPSILON {
        return 0.0;
    }
    (mutual_information(x, y) / h).clamp(0.0, 1.0)
}

/// The pairwise NMI values of every ordered pair of series in a symbolic
/// database. Computed once per database and reused across threshold
/// configurations (the paper notes MI is computed once per dataset).
#[derive(Debug, Clone, PartialEq)]
pub struct NmiMatrix {
    n: usize,
    /// `values[i * n + j]` = `Ĩ(X_i; X_j)`.
    values: Vec<f64>,
}

impl NmiMatrix {
    /// Computes the NMI of every ordered pair of series in `dsyb`.
    #[must_use]
    pub fn compute(dsyb: &SymbolicDatabase) -> Self {
        let n = dsyb.num_series();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    values[i * n + j] = 1.0;
                } else {
                    values[i * n + j] = normalized_mi(&dsyb.series()[i], &dsyb.series()[j]);
                }
            }
        }
        Self { n, values }
    }

    /// Number of series.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `Ĩ(X_i; X_j)` for series ids `i`, `j`.
    #[must_use]
    pub fn get(&self, i: SeriesId, j: SeriesId) -> f64 {
        let (i, j) = (i.0 as usize, j.0 as usize);
        if i < self.n && j < self.n {
            self.values[i * self.n + j]
        } else {
            0.0
        }
    }

    /// `min(Ĩ(X_i; X_j), Ĩ(X_j; X_i))` — the quantity compared against μ in
    /// Definition 5.4.
    #[must_use]
    pub fn min_nmi(&self, i: SeriesId, j: SeriesId) -> f64 {
        self.get(i, j).min(self.get(j, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stpm_timeseries::{Alphabet, SymbolicSeries};

    fn series(name: &str, bits: &str) -> SymbolicSeries {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let labels: Vec<&str> = bits
            .chars()
            .map(|c| if c == '1' { "1" } else { "0" })
            .collect();
        SymbolicSeries::from_labels(name, &labels, alphabet).unwrap()
    }

    #[test]
    fn entropy_of_balanced_and_constant_series() {
        assert!((entropy_of(&series("B", "01010101")) - 1.0).abs() < 1e-12);
        assert!(entropy_of(&series("K", "11111111")).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_of_identical_series_is_zero() {
        let x = series("X", "0110100110");
        assert!(conditional_entropy(&x, &x).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_of_independent_series_equals_marginal_entropy() {
        let x = series("X", "01010101");
        let y = series("Y", "00110011");
        assert!((conditional_entropy(&x, &y) - entropy_of(&x)).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_identities() {
        let x = series("X", "0110100110");
        let y = series("Y", "0011001100");
        // I(X;X) = H(X).
        assert!((mutual_information(&x, &x) - entropy_of(&x)).abs() < 1e-12);
        // I(X;Y) = H(X) - H(X|Y).
        assert!(
            (mutual_information(&x, &y) - (entropy_of(&x) - conditional_entropy(&x, &y))).abs()
                < 1e-12
        );
        // Symmetry of MI.
        assert!((mutual_information(&x, &y) - mutual_information(&y, &x)).abs() < 1e-12);
        // Non-negativity.
        assert!(mutual_information(&x, &y) >= 0.0);
    }

    #[test]
    fn nmi_of_identical_series_is_one_and_of_independent_is_zero() {
        let x = series("X", "01010101");
        let y = series("Y", "00110011");
        assert!((normalized_mi(&x, &x) - 1.0).abs() < 1e-12);
        assert!(normalized_mi(&x, &y).abs() < 1e-12);
        // Negation carries full information too.
        let not_x = series("NX", "10101010");
        assert!((normalized_mi(&x, &not_x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_of_constant_series_is_zero() {
        let x = series("X", "01010101");
        let k = series("K", "11111111");
        assert_eq!(normalized_mi(&k, &x), 0.0);
        assert_eq!(normalized_mi(&x, &k), 0.0);
    }

    #[test]
    fn nmi_is_not_symmetric_in_general() {
        // X has 4 symbols worth of structure folded into 2, Y is coarser; use
        // different alphabets to expose asymmetry.
        let ax = Alphabet::from_strs(&["a", "b", "c", "d"]).unwrap();
        let x = SymbolicSeries::from_labels("X", &["a", "b", "c", "d", "a", "b", "c", "d"], ax)
            .unwrap();
        let y = series("Y", "00110011");
        let xy = normalized_mi(&x, &y);
        let yx = normalized_mi(&y, &x);
        assert!(xy < yx, "Ĩ(X;Y)={xy} should be smaller than Ĩ(Y;X)={yx}");
    }

    #[test]
    fn nmi_matrix_lookup() {
        let db = SymbolicDatabase::new(vec![
            series("A", "01010101"),
            series("B", "01010101"),
            series("C", "00110011"),
        ])
        .unwrap();
        let matrix = NmiMatrix::compute(&db);
        assert_eq!(matrix.len(), 3);
        assert!(!matrix.is_empty());
        assert!((matrix.get(SeriesId(0), SeriesId(1)) - 1.0).abs() < 1e-12);
        assert!(matrix.get(SeriesId(0), SeriesId(2)).abs() < 1e-12);
        assert!((matrix.min_nmi(SeriesId(0), SeriesId(1)) - 1.0).abs() < 1e-12);
        assert_eq!(matrix.get(SeriesId(0), SeriesId(9)), 0.0);
        assert!((matrix.get(SeriesId(2), SeriesId(2)) - 1.0).abs() < 1e-12);
    }
}
