//! The `maxSeason` lower bound (Theorem 1) and the μ threshold derivation
//! (Corollary 1.1) that connect mutual information to seasonality.
//!
//! Theorem 1: if `Ĩ(X_S; Y_S) ≥ μ`, then for an event pair `(X_1, Y_1)`
//!
//! ```text
//! maxSeason(X_1, Y_1) ≥ (λ_2 · |D_SEQ| / minDensity) · e^{W(log2(λ_1^{1-μ}) · ln 2 / λ_2)}
//! ```
//!
//! where `λ_1 = min_i p(X_i)`, `λ_2 = p(Y_1)` and `W` is the Lambert W
//! function. Corollary 1.1 inverts the bound to obtain the smallest μ that
//! guarantees `maxSeason ≥ minSeason`, which is what A-STPM compares the NMI
//! of each series pair against.

use crate::lambert::lambert_w0;
use stpm_timeseries::SymbolicSeries;

/// Evaluates the Theorem 1 lower bound on `maxSeason(X_1, Y_1)`.
///
/// * `lambda1` — minimum symbol probability of the first series (`> 0`).
/// * `lambda2` — probability of the event `Y_1` in the second series (`> 0`).
/// * `mu` — the mutual-information threshold.
/// * `dseq_len` — number of granules of `D_SEQ`.
/// * `min_density` — the `minDensity` threshold (granules).
///
/// Returns `None` when the parameters are outside the bound's domain.
#[must_use]
pub fn max_season_lower_bound(
    lambda1: f64,
    lambda2: f64,
    mu: f64,
    dseq_len: u64,
    min_density: u64,
) -> Option<f64> {
    if !(0.0..=1.0).contains(&lambda1)
        || !(0.0..=1.0).contains(&lambda2)
        || lambda1 <= 0.0
        || lambda2 <= 0.0
        || min_density == 0
    {
        return None;
    }
    // b = log2(λ1^{1-μ}) = (1-μ)·log2(λ1); the W argument is b·ln2 / λ2.
    let b = (1.0 - mu) * lambda1.log2();
    let w_arg = b * std::f64::consts::LN_2 / lambda2;
    // Below the branch point of W the derivation's inequality y·e^y ≥ w_arg
    // holds for every y, so the bound degenerates to the trivial 0.
    if w_arg < -(-1.0f64).exp() - 1e-12 {
        return Some(0.0);
    }
    let w = lambert_w0(w_arg)?;
    Some(lambda2 * dseq_len as f64 / min_density as f64 * w.exp())
}

/// Corollary 1.1: the smallest μ guaranteeing that the event pair with
/// probabilities (`lambda1`, `lambda2`) can reach `minSeason` seasons.
///
/// The returned value is clamped to `[0, 1]` so that perfectly correlated
/// series (NMI = 1) are never pruned even when the bound is unattainable.
#[must_use]
pub fn mu_threshold(
    lambda1: f64,
    lambda2: f64,
    min_season: u64,
    min_density: u64,
    dseq_len: u64,
) -> f64 {
    if lambda1 <= 0.0 || lambda1 >= 1.0 || lambda2 <= 0.0 || dseq_len == 0 {
        // Degenerate distributions carry no usable information: require
        // perfect correlation.
        return 1.0;
    }
    let rho = min_season as f64 * min_density as f64 / (lambda2 * dseq_len as f64);
    let ln2 = std::f64::consts::LN_2;
    let mu = if rho <= std::f64::consts::E.recip() {
        // µ ≥ 1 − λ2 / (e · ln 2 · log2(1/λ1))
        1.0 - lambda2 / (std::f64::consts::E * ln2 * (1.0 / lambda1).log2())
    } else {
        // µ ≥ 1 − ρ·λ2·log2(ρ) / (ln 2 · log2(λ1))
        1.0 - rho * lambda2 * rho.log2() / (ln2 * lambda1.log2())
    };
    mu.clamp(0.0, 1.0)
}

/// The μ threshold of a *pair of series*: the minimum of [`mu_threshold`]
/// over every event pair of the two series, evaluated in both directions
/// (the paper prescribes taking the minimum μ among all event pairs).
#[must_use]
pub fn pair_mu_threshold(
    x: &SymbolicSeries,
    y: &SymbolicSeries,
    min_season: u64,
    min_density: u64,
    dseq_len: u64,
) -> f64 {
    // Symbols that are effectively absent (below 5% empirical probability)
    // are excluded: a vanishing λ1 drives log2(1/λ1) → ∞ and the Corollary
    // would demand near-perfect correlation for *every* pair, pruning the
    // whole database regardless of the seasonality thresholds.
    const PROBABILITY_FLOOR: f64 = 0.05;
    let px = x.symbol_probabilities();
    let py = y.symbol_probabilities();
    let direction = |from: &[f64], to: &[f64]| -> f64 {
        let lambda1 = from
            .iter()
            .copied()
            .filter(|p| *p >= PROBABILITY_FLOOR)
            .fold(f64::INFINITY, f64::min);
        if !lambda1.is_finite() {
            return 1.0;
        }
        to.iter()
            .copied()
            .filter(|p| *p >= PROBABILITY_FLOOR)
            .map(|lambda2| mu_threshold(lambda1, lambda2, min_season, min_density, dseq_len))
            .fold(1.0, f64::min)
    };
    direction(&px, &py).min(direction(&py, &px))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stpm_timeseries::{Alphabet, SymbolicSeries};

    #[test]
    fn bound_domain_checks() {
        assert!(max_season_lower_bound(0.0, 0.5, 0.5, 100, 3).is_none());
        assert!(max_season_lower_bound(0.5, 0.0, 0.5, 100, 3).is_none());
        assert!(max_season_lower_bound(0.5, 0.5, 0.5, 100, 0).is_none());
        assert!(max_season_lower_bound(0.3, 0.4, 0.8, 1000, 7).is_some());
    }

    #[test]
    fn bound_grows_with_mu() {
        // A larger MI threshold tightens the bound upward: more correlation
        // implies more guaranteed co-occurrences.
        let low = max_season_lower_bound(0.3, 0.4, 0.2, 1000, 7).unwrap();
        let high = max_season_lower_bound(0.3, 0.4, 0.9, 1000, 7).unwrap();
        assert!(high >= low);
    }

    #[test]
    fn bound_at_mu_one_equals_max_possible() {
        // µ = 1 ⇒ W(0) = 0 ⇒ bound = λ2·|D_SEQ| / minDensity, i.e. the
        // maxSeason the event pair would have if it occurred whenever Y_1 did.
        let b = max_season_lower_bound(0.3, 0.4, 1.0, 1000, 8).unwrap();
        assert!((b - 0.4 * 1000.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn corollary_guarantees_min_season() {
        // For several parameter settings, plugging the derived µ back into the
        // Theorem 1 bound must yield at least minSeason (up to numerical
        // tolerance), unless µ was clamped at 1.
        for &(lambda1, lambda2, min_season, min_density, dseq_len) in &[
            (0.3, 0.4, 4u64, 7u64, 1000u64),
            (0.2, 0.5, 8, 10, 1460),
            (0.45, 0.3, 12, 7, 1249),
            (0.1, 0.6, 4, 4, 608),
        ] {
            let mu = mu_threshold(lambda1, lambda2, min_season, min_density, dseq_len);
            if mu < 1.0 {
                let bound =
                    max_season_lower_bound(lambda1, lambda2, mu, dseq_len, min_density).unwrap();
                assert!(
                    bound + 1e-6 >= min_season as f64,
                    "bound {bound} < minSeason {min_season} for µ={mu}"
                );
            }
        }
    }

    #[test]
    fn mu_is_higher_for_rarer_events() {
        // Smaller λ2 (rarer event) needs a higher µ to guarantee the same
        // number of seasons.
        let common = mu_threshold(0.3, 0.5, 4, 7, 1000);
        let rare = mu_threshold(0.3, 0.05, 4, 7, 1000);
        assert!(rare >= common);
    }

    #[test]
    fn mu_decreases_or_stays_when_requirements_grow_within_case_two() {
        // In the ρ > 1/e regime the paper observes an inverse relationship:
        // larger minSeason·minDensity lowers µ.
        let small = mu_threshold(0.3, 0.4, 12, 7, 600);
        let large = mu_threshold(0.3, 0.4, 20, 7, 600);
        assert!(large <= small + 1e-12);
    }

    #[test]
    fn mu_degenerate_inputs_force_perfect_correlation() {
        assert_eq!(mu_threshold(0.0, 0.5, 4, 7, 100), 1.0);
        assert_eq!(mu_threshold(1.0, 0.5, 4, 7, 100), 1.0);
        assert_eq!(mu_threshold(0.5, 0.0, 4, 7, 100), 1.0);
        assert_eq!(mu_threshold(0.5, 0.5, 4, 7, 0), 1.0);
    }

    #[test]
    fn mu_is_always_in_unit_interval() {
        for &l1 in &[0.01, 0.1, 0.3, 0.5, 0.9] {
            for &l2 in &[0.01, 0.1, 0.5, 0.9] {
                for &ms in &[1u64, 4, 20] {
                    for &md in &[1u64, 7, 15] {
                        let mu = mu_threshold(l1, l2, ms, md, 1460);
                        assert!((0.0..=1.0).contains(&mu), "µ={mu} out of range");
                    }
                }
            }
        }
    }

    #[test]
    fn pair_mu_uses_the_minimum_over_event_pairs() {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let x = SymbolicSeries::from_labels(
            "X",
            &["0", "1", "0", "1", "1", "0", "1", "0"],
            alphabet.clone(),
        )
        .unwrap();
        let y =
            SymbolicSeries::from_labels("Y", &["1", "1", "0", "0", "1", "1", "0", "0"], alphabet)
                .unwrap();
        let mu = pair_mu_threshold(&x, &y, 2, 2, 8);
        assert!((0.0..=1.0).contains(&mu));
        // The pair threshold can never exceed any single-direction threshold.
        let px = x.symbol_probabilities();
        let lambda1 = px.iter().copied().filter(|p| *p > 0.0).fold(1.0, f64::min);
        let any_single = mu_threshold(lambda1, 0.5, 2, 2, 8);
        assert!(mu <= any_single + 1e-12);
    }
}
