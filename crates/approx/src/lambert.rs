//! The Lambert W function (principal branch `W_0`), needed by the
//! `maxSeason` lower bound of Theorem 1.
//!
//! `W(x)` is the inverse of `w ↦ w·e^w`; it is real-valued for
//! `x ≥ -1/e`. The implementation uses a cheap initial guess followed by
//! Halley iterations, which converges to machine precision in a handful of
//! steps over the range the bound exercises (`x ∈ [-1/e, 0)` mostly).

/// Evaluates the principal branch `W_0(x)` of the Lambert W function.
///
/// Returns `None` when `x < -1/e` (outside the real domain) or `x` is not
/// finite.
#[must_use]
pub fn lambert_w0(x: f64) -> Option<f64> {
    if !x.is_finite() {
        return None;
    }
    let min_x = -(-1.0f64).exp(); // -1/e
    if x < min_x - 1e-12 {
        return None;
    }
    if x.abs() < 1e-300 {
        return Some(0.0);
    }
    // Clamp tiny negative excursions below -1/e caused by rounding.
    let x = x.max(min_x);

    // Initial guess.
    let mut w = if x > 1.0 {
        // For large x, W(x) ≈ ln x - ln ln x.
        let lx = x.ln();
        lx - lx.ln().max(0.0)
    } else if x > -0.25 {
        // Series-inspired guess around zero.
        x * (1.0 - x)
    } else {
        // Near the branch point -1/e: W ≈ -1 + sqrt(2(e·x + 1)).
        let p = (2.0 * (std::f64::consts::E * x + 1.0)).max(0.0).sqrt();
        -1.0 + p
    };

    // Halley iteration (falls back to Newton near the branch point where the
    // Halley correction degenerates).
    for _ in 0..64 {
        let ew = w.exp();
        let f = w * ew - x;
        if f.abs() <= 1e-16 * x.abs().max(1.0) {
            break;
        }
        let newton_denom = ew * (w + 1.0);
        let halley_correction = if (2.0 * w + 2.0).abs() > 1e-12 {
            (w + 2.0) * f / (2.0 * w + 2.0)
        } else {
            0.0
        };
        let denom = newton_denom - halley_correction;
        let denom = if denom.abs() > 1e-300 {
            denom
        } else if newton_denom.abs() > 1e-300 {
            newton_denom
        } else {
            break;
        };
        let next = w - f / denom;
        if (next - w).abs() <= 1e-14 * next.abs().max(1.0) {
            w = next;
            break;
        }
        w = next;
    }
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(x: f64) {
        let w = lambert_w0(x).unwrap();
        let back = w * w.exp();
        assert!(
            (back - x).abs() < 1e-9 * x.abs().max(1.0),
            "W({x}) = {w}, but W·e^W = {back}"
        );
    }

    #[test]
    fn known_values() {
        assert!((lambert_w0(0.0).unwrap()).abs() < 1e-12);
        assert!((lambert_w0(std::f64::consts::E).unwrap() - 1.0).abs() < 1e-9);
        // W(-1/e) = -1.
        let branch = lambert_w0(-(-1.0f64).exp()).unwrap();
        assert!((branch + 1.0).abs() < 1e-5);
        // W(1) = Ω ≈ 0.5671432904.
        assert!((lambert_w0(1.0).unwrap() - 0.567_143_290_4).abs() < 1e-9);
    }

    #[test]
    fn round_trip_over_the_domain() {
        for &x in &[
            -0.367, -0.3, -0.2, -0.1, -0.01, 0.001, 0.1, 0.5, 1.0, 2.0, 10.0, 100.0, 1e6,
        ] {
            check(x);
        }
    }

    #[test]
    fn out_of_domain_inputs_are_rejected() {
        assert!(lambert_w0(-1.0).is_none());
        assert!(lambert_w0(-0.5).is_none());
        assert!(lambert_w0(f64::NAN).is_none());
        assert!(lambert_w0(f64::INFINITY).is_none());
    }

    #[test]
    fn monotonicity_on_the_principal_branch() {
        let mut prev = lambert_w0(-0.36).unwrap();
        for i in 1..100 {
            let x = -0.36 + f64::from(i) * 0.01;
            let w = lambert_w0(x).unwrap();
            assert!(w >= prev - 1e-12, "W must be non-decreasing");
            prev = w;
        }
    }
}
