//! The approximate miner A-STPM (Algorithm 2) and the accuracy metric used
//! to compare it against the exact miner.
//!
//! A-STPM computes the NMI of every pair of symbolic series once, derives the
//! μ threshold of Corollary 1.1 from `minSeason` and `minDensity`, keeps only
//! the series that participate in at least one correlated pair, and runs the
//! exact E-STPM on the reduced database. Everything else (single events,
//! 2-event patterns, k-event patterns) is inherited from `stpm-core`.

use crate::bound::pair_mu_threshold;
use crate::info::NmiMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};
use stpm_core::{MiningReport, StpmConfig, StpmMiner};
use stpm_timeseries::{EventRegistry, SeriesId, SymbolicDatabase};

/// Errors raised by the approximate miner.
#[derive(Debug, Clone, PartialEq)]
pub enum AStpmError {
    /// The data-transformation phase failed (projection or sequence mapping).
    Transform(stpm_timeseries::Error),
    /// The exact-mining phase failed (configuration error).
    Mining(stpm_core::Error),
}

impl fmt::Display for AStpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AStpmError::Transform(e) => write!(f, "data transformation failed: {e}"),
            AStpmError::Mining(e) => write!(f, "mining failed: {e}"),
        }
    }
}

impl std::error::Error for AStpmError {}

impl From<stpm_timeseries::Error> for AStpmError {
    fn from(e: stpm_timeseries::Error) -> Self {
        AStpmError::Transform(e)
    }
}

impl From<stpm_core::Error> for AStpmError {
    fn from(e: stpm_core::Error) -> Self {
        AStpmError::Mining(e)
    }
}

/// Configuration of the approximate miner: the exact-miner thresholds plus an
/// optional explicit μ override (when `None`, μ is derived per series pair
/// from Corollary 1.1 — the paper's default behaviour).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AStpmConfig {
    /// The thresholds passed to the exact miner on the reduced database.
    pub stpm: StpmConfig,
    /// Fixed μ threshold; overrides the Corollary 1.1 derivation when set.
    pub mu_override: Option<f64>,
}

impl AStpmConfig {
    /// Wraps an exact-miner configuration with the derived-μ behaviour.
    #[must_use]
    pub fn new(stpm: StpmConfig) -> Self {
        Self {
            stpm,
            mu_override: None,
        }
    }

    /// Uses a fixed μ threshold instead of deriving it.
    #[must_use]
    pub fn with_mu(mut self, mu: f64) -> Self {
        self.mu_override = Some(mu);
        self
    }
}

/// Output of an A-STPM run.
#[derive(Debug, Clone, PartialEq)]
pub struct AStpmReport {
    report: MiningReport,
    registry: EventRegistry,
    kept_series: Vec<SeriesId>,
    pruned_series: Vec<SeriesId>,
    total_series: usize,
    pruned_events: usize,
    total_events: usize,
    mi_time: Duration,
    mining_time: Duration,
}

impl AStpmReport {
    /// The mining report produced on the reduced database. Event labels refer
    /// to [`AStpmReport::registry`].
    #[must_use]
    pub fn report(&self) -> &MiningReport {
        &self.report
    }

    /// Registry of the reduced database (use it to display patterns).
    #[must_use]
    pub fn registry(&self) -> &EventRegistry {
        &self.registry
    }

    /// Series (ids of the *original* database) kept for mining.
    #[must_use]
    pub fn kept_series(&self) -> &[SeriesId] {
        &self.kept_series
    }

    /// Series pruned before mining.
    #[must_use]
    pub fn pruned_series(&self) -> &[SeriesId] {
        &self.pruned_series
    }

    /// Fraction of time series pruned, in percent (Table XI of the paper).
    #[must_use]
    pub fn pruned_series_pct(&self) -> f64 {
        if self.total_series == 0 {
            0.0
        } else {
            100.0 * self.pruned_series.len() as f64 / self.total_series as f64
        }
    }

    /// Fraction of events pruned, in percent (Table XI of the paper).
    #[must_use]
    pub fn pruned_events_pct(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            100.0 * self.pruned_events as f64 / self.total_events as f64
        }
    }

    /// Wall-clock time spent computing MI and μ.
    #[must_use]
    pub fn mi_time(&self) -> Duration {
        self.mi_time
    }

    /// Wall-clock time spent mining the reduced database.
    #[must_use]
    pub fn mining_time(&self) -> Duration {
        self.mining_time
    }

    /// Total wall-clock time (MI + mining).
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.mi_time + self.mining_time
    }
}

/// The approximate seasonal temporal pattern miner.
#[derive(Debug, Clone)]
pub struct AStpmMiner<'a> {
    dsyb: &'a SymbolicDatabase,
    mapping_factor: u64,
    config: AStpmConfig,
}

impl<'a> AStpmMiner<'a> {
    /// Creates a miner over the symbolic database `dsyb`; `mapping_factor` is
    /// the `m` of the sequence mapping `g : X_S →_m H`.
    ///
    /// # Errors
    /// [`AStpmError::Transform`] when `mapping_factor` does not produce at
    /// least one granule.
    pub fn new(
        dsyb: &'a SymbolicDatabase,
        mapping_factor: u64,
        config: &AStpmConfig,
    ) -> Result<Self, AStpmError> {
        if mapping_factor == 0 || dsyb.len() as u64 / mapping_factor.max(1) == 0 {
            return Err(AStpmError::Transform(
                stpm_timeseries::Error::InvalidGranularity {
                    reason: format!(
                        "mapping factor {mapping_factor} produces no complete granule for {} instants",
                        dsyb.len()
                    ),
                },
            ));
        }
        Ok(Self {
            dsyb,
            mapping_factor,
            config: config.clone(),
        })
    }

    /// Identifies the correlated series of the database: the union of all
    /// pairs whose minimum-direction NMI reaches the pair's μ threshold
    /// (Definition 5.4 + Corollary 1.1).
    #[must_use]
    pub fn correlated_series(&self) -> Vec<SeriesId> {
        let dseq_len = self.dsyb.len() as u64 / self.mapping_factor;
        let resolved = match self.config.stpm.resolve(dseq_len) {
            Ok(r) => r,
            Err(_) => return Vec::new(),
        };
        let matrix = NmiMatrix::compute(self.dsyb);
        let n = self.dsyb.num_series();
        let mut keep = vec![false; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let (si, sj) = (
                    SeriesId(u32::try_from(i).expect("series fits u32")),
                    SeriesId(u32::try_from(j).expect("series fits u32")),
                );
                let mu = self.config.mu_override.unwrap_or_else(|| {
                    pair_mu_threshold(
                        &self.dsyb.series()[i],
                        &self.dsyb.series()[j],
                        resolved.min_season,
                        resolved.min_density,
                        dseq_len,
                    )
                });
                if matrix.min_nmi(si, sj) >= mu {
                    keep[i] = true;
                    keep[j] = true;
                }
            }
        }
        keep.iter()
            .enumerate()
            .filter_map(|(i, k)| {
                k.then(|| SeriesId(u32::try_from(i).expect("series fits u32")))
            })
            .collect()
    }

    /// Runs A-STPM: correlated-series detection, projection, exact mining on
    /// the reduced database.
    ///
    /// # Errors
    /// Propagates data-transformation and configuration errors.
    pub fn mine(&self) -> Result<AStpmReport, AStpmError> {
        let mi_start = Instant::now();
        let kept = self.correlated_series();
        let mi_time = mi_start.elapsed();

        let total_series = self.dsyb.num_series();
        let total_events = self.dsyb.registry().num_events();
        let kept_set: Vec<u32> = kept.iter().map(|s| s.0).collect();
        let pruned_series: Vec<SeriesId> = (0..total_series)
            .map(|i| SeriesId(u32::try_from(i).expect("series fits u32")))
            .filter(|s| !kept_set.contains(&s.0))
            .collect();
        let pruned_events: usize = pruned_series
            .iter()
            .map(|s| {
                self.dsyb
                    .registry()
                    .alphabet(*s)
                    .map_or(0, <[String]>::len)
            })
            .sum();

        let mining_start = Instant::now();
        let (report, registry) = if kept.is_empty() {
            (MiningReport::default(), EventRegistry::new())
        } else {
            let projected = self.dsyb.project(&kept)?;
            let dseq = projected.to_sequence_database(self.mapping_factor)?;
            let report = StpmMiner::new(&dseq, &self.config.stpm)?.mine();
            (report, projected.registry().clone())
        };
        let mining_time = mining_start.elapsed();

        Ok(AStpmReport {
            report,
            registry,
            kept_series: kept,
            pruned_series,
            total_series,
            pruned_events,
            total_events,
            mi_time,
            mining_time,
        })
    }
}

/// Accuracy of an approximate result w.r.t. the exact result, in percent:
/// the fraction of exact frequent seasonal patterns (events and k-event
/// patterns) that the approximate run also found. Patterns are compared by
/// their human-readable rendering so that reports produced over different
/// (projected) registries remain comparable. An empty exact result counts as
/// 100% accuracy.
#[must_use]
pub fn accuracy(
    exact: &MiningReport,
    exact_registry: &EventRegistry,
    approx: &MiningReport,
    approx_registry: &EventRegistry,
) -> f64 {
    let exact_set: std::collections::BTreeSet<String> = exact
        .events()
        .iter()
        .map(|e| exact_registry.display(e.label))
        .chain(
            exact
                .patterns()
                .iter()
                .map(|p| p.pattern().display(exact_registry)),
        )
        .collect();
    if exact_set.is_empty() {
        return 100.0;
    }
    let approx_set: std::collections::BTreeSet<String> = approx
        .events()
        .iter()
        .map(|e| approx_registry.display(e.label))
        .chain(
            approx
                .patterns()
                .iter()
                .map(|p| p.pattern().display(approx_registry)),
        )
        .collect();
    let hit = exact_set.intersection(&approx_set).count();
    100.0 * hit as f64 / exact_set.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use stpm_core::Threshold;
    use stpm_timeseries::{Alphabet, SymbolicSeries};

    /// Builds a database with two strongly correlated series (C and D share
    /// their seasonal bursts), one anti-correlated series (F), and one noise
    /// series (Z) that is independent of everything.
    fn sample_dsyb() -> SymbolicDatabase {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let c = "110100110000000000111111000000100110000110";
        let d = "100100110110000000111111000000100100110110";
        let f: String = c
            .chars()
            .map(|ch| if ch == '1' { '0' } else { '1' })
            .collect();
        let z = "010000100001000010000100000100001000010000";
        let make = |name: &str, bits: &str| {
            let labels: Vec<&str> = bits
                .chars()
                .map(|c| if c == '1' { "1" } else { "0" })
                .collect();
            SymbolicSeries::from_labels(name, &labels, alphabet.clone()).unwrap()
        };
        SymbolicDatabase::new(vec![make("C", c), make("D", d), make("F", &f), make("Z", z)])
            .unwrap()
    }

    fn config() -> AStpmConfig {
        AStpmConfig::new(StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(2),
            dist_interval: (3, 10),
            min_season: 2,
            max_pattern_len: 2,
            ..StpmConfig::default()
        })
    }

    #[test]
    fn correlated_series_keeps_the_coupled_appliances() {
        let dsyb = sample_dsyb();
        let miner = AStpmMiner::new(&dsyb, 3, &config()).unwrap();
        let kept = miner.correlated_series();
        // C (0) and F (2) are perfect mirrors → NMI 1.0, always kept.
        assert!(kept.contains(&SeriesId(0)));
        assert!(kept.contains(&SeriesId(2)));
    }

    #[test]
    fn mu_override_zero_keeps_everything() {
        let dsyb = sample_dsyb();
        let cfg = config().with_mu(0.0);
        let miner = AStpmMiner::new(&dsyb, 3, &cfg).unwrap();
        assert_eq!(miner.correlated_series().len(), 4);
        let report = miner.mine().unwrap();
        assert!(report.pruned_series().is_empty());
        assert_eq!(report.pruned_series_pct(), 0.0);
        assert_eq!(report.pruned_events_pct(), 0.0);
    }

    #[test]
    fn impossible_mu_prunes_everything() {
        let dsyb = sample_dsyb();
        let cfg = config().with_mu(1.1);
        let miner = AStpmMiner::new(&dsyb, 3, &cfg).unwrap();
        let report = miner.mine().unwrap();
        assert!(report.kept_series().is_empty());
        assert_eq!(report.pruned_series().len(), 4);
        assert_eq!(report.report().total_patterns(), 0);
        assert!((report.pruned_series_pct() - 100.0).abs() < 1e-12);
        assert!(report.total_time() >= report.mining_time());
    }

    #[test]
    fn approx_mining_reaches_high_accuracy_on_correlated_data() {
        let dsyb = sample_dsyb();
        let dseq = dsyb.to_sequence_database(3).unwrap();
        let exact = StpmMiner::new(&dseq, &config().stpm).unwrap().mine();

        let approx = AStpmMiner::new(&dsyb, 3, &config()).unwrap().mine().unwrap();
        let acc = accuracy(
            &exact,
            dsyb.registry(),
            approx.report(),
            approx.registry(),
        );
        assert!((0.0..=100.0).contains(&acc));
        // A-STPM trades a small accuracy loss for speed; it must still find a
        // non-trivial share of the exact output on correlated data.
        assert!(acc > 0.0, "accuracy unexpectedly zero");
    }

    #[test]
    fn approx_mining_with_zero_mu_is_exact() {
        // With µ forced to 0 no series is pruned, so A-STPM degenerates to
        // E-STPM and the accuracy is exactly 100%.
        let dsyb = sample_dsyb();
        let dseq = dsyb.to_sequence_database(3).unwrap();
        let exact = StpmMiner::new(&dseq, &config().stpm).unwrap().mine();
        let approx = AStpmMiner::new(&dsyb, 3, &config().with_mu(0.0))
            .unwrap()
            .mine()
            .unwrap();
        let acc = accuracy(&exact, dsyb.registry(), approx.report(), approx.registry());
        assert!((acc - 100.0).abs() < 1e-12);
        assert_eq!(approx.report().total_patterns(), exact.total_patterns());
    }

    #[test]
    fn accuracy_of_identical_reports_is_100() {
        let dsyb = sample_dsyb();
        let dseq = dsyb.to_sequence_database(3).unwrap();
        let exact = StpmMiner::new(&dseq, &config().stpm).unwrap().mine();
        let acc = accuracy(&exact, dsyb.registry(), &exact, dsyb.registry());
        assert!((acc - 100.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_of_empty_exact_result_is_100() {
        let exact = MiningReport::default();
        let approx = MiningReport::default();
        let reg = EventRegistry::new();
        assert!((accuracy(&exact, &reg, &approx, &reg) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_mapping_factor_is_rejected() {
        let dsyb = sample_dsyb();
        assert!(AStpmMiner::new(&dsyb, 0, &config()).is_err());
        assert!(AStpmMiner::new(&dsyb, 1000, &config()).is_err());
    }

    #[test]
    fn error_display_covers_both_variants() {
        let t: AStpmError = stpm_timeseries::Error::EmptySeries { name: "X".into() }.into();
        assert!(t.to_string().contains("transformation"));
        let m: AStpmError = stpm_core::Error::EmptyDatabase.into();
        assert!(m.to_string().contains("mining"));
    }

    #[test]
    fn report_time_components_are_consistent() {
        let dsyb = sample_dsyb();
        let report = AStpmMiner::new(&dsyb, 3, &config()).unwrap().mine().unwrap();
        assert_eq!(report.total_time(), report.mi_time() + report.mining_time());
    }
}
