//! The approximate mining engine A-STPM (Algorithm 2).
//!
//! A-STPM computes the NMI of every pair of symbolic series once, derives the
//! µ threshold of Corollary 1.1 from `minSeason` and `minDensity`, keeps only
//! the series that participate in at least one correlated pair, and runs the
//! exact E-STPM on the reduced database. Everything else (single events,
//! 2-event patterns, k-event patterns) is inherited from `stpm-core`.
//!
//! The engine reports through the unified
//! [`EngineReport`]: the `"mi"` phase carries the
//! NMI/µ computation time, the pruning summary carries the series/event
//! pruning ratios of Table XI, and the registry is the registry of the
//! *projected* database.
//!
//! Because level mining is delegated to E-STPM, the
//! [`threads`](stpm_core::StpmConfig::threads) knob applies here unchanged:
//! A-STPM mines the reduced database with the same sharded parallel path and
//! the same determinism guarantee.

use crate::bound::pair_mu_threshold;
use crate::info::NmiMatrix;
use std::time::Instant;
use stpm_core::engine::{phases, MiningEngine, MiningInput, PhaseTiming, PruningSummary};
use stpm_core::{EngineReport, MiningReport, ResolvedConfig, StpmMiner};
use stpm_timeseries::{EventRegistry, SeriesId, SymbolicDatabase};

/// The approximate seasonal temporal pattern mining engine.
///
/// The engine value carries only its configuration: an optional fixed µ
/// threshold. When `mu_override` is `None`, µ is derived per series pair from
/// Corollary 1.1 — the paper's default behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AStpmMiner {
    /// Fixed µ threshold; overrides the Corollary 1.1 derivation when set.
    pub mu_override: Option<f64>,
}

impl AStpmMiner {
    /// The paper's default engine: µ derived from the seasonality thresholds
    /// through the Lambert-W bound of Theorem 1.
    #[must_use]
    pub fn new() -> Self {
        Self { mu_override: None }
    }

    /// Uses a fixed µ threshold instead of deriving it.
    #[must_use]
    pub fn with_mu(mu: f64) -> Self {
        Self {
            mu_override: Some(mu),
        }
    }

    /// Identifies the correlated series of the database: the union of all
    /// pairs whose minimum-direction NMI reaches the pair's µ threshold
    /// (Definition 5.4 + Corollary 1.1).
    #[must_use]
    pub fn correlated_series(
        &self,
        dsyb: &SymbolicDatabase,
        config: &ResolvedConfig,
    ) -> Vec<SeriesId> {
        let matrix = NmiMatrix::compute(dsyb);
        let n = dsyb.num_series();
        let mut keep = vec![false; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let (si, sj) = (
                    SeriesId(u32::try_from(i).expect("series fits u32")),
                    SeriesId(u32::try_from(j).expect("series fits u32")),
                );
                let mu = self.mu_override.unwrap_or_else(|| {
                    pair_mu_threshold(
                        &dsyb.series()[i],
                        &dsyb.series()[j],
                        config.min_season,
                        config.min_density,
                        config.dseq_len,
                    )
                });
                if matrix.min_nmi(si, sj) >= mu {
                    keep[i] = true;
                    keep[j] = true;
                }
            }
        }
        keep.iter()
            .enumerate()
            .filter(|&(_i, k)| *k)
            .map(|(i, _k)| SeriesId(u32::try_from(i).expect("series fits u32")))
            .collect()
    }
}

impl MiningEngine for AStpmMiner {
    fn name(&self) -> &'static str {
        "A-STPM"
    }

    /// Runs A-STPM: correlated-series detection on `D_SYB`, projection,
    /// sequence mapping, exact mining on the reduced database.
    ///
    /// # Errors
    /// Propagates data-transformation errors of the projection and mapping as
    /// [`Error::Transform`](stpm_core::Error::Transform).
    fn mine(
        &self,
        input: &MiningInput<'_>,
        config: &ResolvedConfig,
    ) -> stpm_core::Result<EngineReport> {
        let dsyb = input.dsyb();
        let mi_start = Instant::now();
        let kept = self.correlated_series(dsyb, config);
        let mi_time = mi_start.elapsed();

        let total_series = dsyb.num_series();
        let total_events = dsyb.registry().num_events();
        let kept_set: Vec<u32> = kept.iter().map(|s| s.0).collect();
        let pruned_series: Vec<SeriesId> = (0..total_series)
            .map(|i| SeriesId(u32::try_from(i).expect("series fits u32")))
            .filter(|s| !kept_set.contains(&s.0))
            .collect();
        let pruned_events: usize = pruned_series
            .iter()
            .map(|s| dsyb.registry().alphabet(*s).map_or(0, <[String]>::len))
            .sum();

        let mining_start = Instant::now();
        let (report, registry) = if kept.is_empty() {
            (MiningReport::default(), EventRegistry::new())
        } else {
            let projected = dsyb.project(&kept)?;
            let dseq = projected.to_sequence_database(input.mapping_factor())?;
            // Projection preserves the granule count, so the resolved
            // thresholds of the original database remain valid.
            let report = StpmMiner::mine_sequences_resolved(&dseq, config);
            (report, projected.registry().clone())
        };
        let mining_time = mining_start.elapsed();

        let memory = report.stats().peak_footprint_bytes;
        Ok(EngineReport::new(
            self.name(),
            report,
            registry,
            vec![
                PhaseTiming::new(phases::MI, mi_time),
                PhaseTiming::new(phases::PATTERNS, mining_time),
            ],
            PruningSummary {
                kept_series: kept,
                pruned_series,
                total_series,
                pruned_events,
                total_events,
                candidate_itemsets: 0,
            },
            memory,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stpm_core::{accuracy, StpmConfig, Threshold};
    use stpm_timeseries::{Alphabet, SymbolicSeries};

    /// Builds a database with two strongly correlated series (C and D share
    /// their seasonal bursts), one anti-correlated series (F), and one noise
    /// series (Z) that is independent of everything.
    fn sample_dsyb() -> SymbolicDatabase {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let c = "110100110000000000111111000000100110000110";
        let d = "100100110110000000111111000000100100110110";
        let f: String = c
            .chars()
            .map(|ch| if ch == '1' { '0' } else { '1' })
            .collect();
        let z = "010000100001000010000100000100001000010000";
        let make = |name: &str, bits: &str| {
            let labels: Vec<&str> = bits
                .chars()
                .map(|c| if c == '1' { "1" } else { "0" })
                .collect();
            SymbolicSeries::from_labels(name, &labels, alphabet.clone()).unwrap()
        };
        SymbolicDatabase::new(vec![
            make("C", c),
            make("D", d),
            make("F", &f),
            make("Z", z),
        ])
        .unwrap()
    }

    fn config() -> StpmConfig {
        StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(2),
            dist_interval: (3, 10),
            min_season: 2,
            max_pattern_len: 2,
            ..StpmConfig::default()
        }
    }

    fn mine(dsyb: &SymbolicDatabase, engine: &AStpmMiner) -> EngineReport {
        let dseq = dsyb.to_sequence_database(3).unwrap();
        let input = MiningInput::new(dsyb, &dseq, 3);
        engine.mine_with(&input, &config()).unwrap()
    }

    #[test]
    fn correlated_series_keeps_the_coupled_appliances() {
        let dsyb = sample_dsyb();
        let resolved = config().resolve(14).unwrap();
        let kept = AStpmMiner::new().correlated_series(&dsyb, &resolved);
        // C (0) and F (2) are perfect mirrors → NMI 1.0, always kept.
        assert!(kept.contains(&SeriesId(0)));
        assert!(kept.contains(&SeriesId(2)));
    }

    #[test]
    fn mu_override_zero_keeps_everything() {
        let dsyb = sample_dsyb();
        let report = mine(&dsyb, &AStpmMiner::with_mu(0.0));
        assert!(report.pruning().pruned_series.is_empty());
        assert_eq!(report.pruning().kept_series.len(), 4);
        assert_eq!(report.pruning().pruned_series_pct(), 0.0);
        assert_eq!(report.pruning().pruned_events_pct(), 0.0);
    }

    #[test]
    fn impossible_mu_prunes_everything() {
        let dsyb = sample_dsyb();
        let report = mine(&dsyb, &AStpmMiner::with_mu(1.1));
        assert!(report.pruning().kept_series.is_empty());
        assert_eq!(report.pruning().pruned_series.len(), 4);
        assert_eq!(report.total_patterns(), 0);
        assert!((report.pruning().pruned_series_pct() - 100.0).abs() < 1e-12);
        assert!(report.total_time() >= report.phase_time(phases::MI));
    }

    #[test]
    fn approx_mining_reaches_high_accuracy_on_correlated_data() {
        let dsyb = sample_dsyb();
        let dseq = dsyb.to_sequence_database(3).unwrap();
        let input = MiningInput::new(&dsyb, &dseq, 3);
        let exact = StpmMiner.mine_with(&input, &config()).unwrap();
        let approx = AStpmMiner::new().mine_with(&input, &config()).unwrap();
        let acc = accuracy(&exact, &approx);
        assert!((0.0..=100.0).contains(&acc));
        // A-STPM trades a small accuracy loss for speed; it must still find a
        // non-trivial share of the exact output on correlated data.
        assert!(acc > 0.0, "accuracy unexpectedly zero");
    }

    #[test]
    fn approx_mining_with_zero_mu_is_exact() {
        // With µ forced to 0 no series is pruned, so A-STPM degenerates to
        // E-STPM and the accuracy is exactly 100%.
        let dsyb = sample_dsyb();
        let dseq = dsyb.to_sequence_database(3).unwrap();
        let input = MiningInput::new(&dsyb, &dseq, 3);
        let exact = StpmMiner.mine_with(&input, &config()).unwrap();
        let approx = AStpmMiner::with_mu(0.0)
            .mine_with(&input, &config())
            .unwrap();
        let acc = accuracy(&exact, &approx);
        assert!((acc - 100.0).abs() < 1e-12);
        assert_eq!(approx.total_patterns(), exact.total_patterns());
    }

    #[test]
    fn parallel_astpm_matches_sequential_astpm() {
        // The threads knob reaches the delegated E-STPM run through
        // ResolvedConfig, so the approximate engine inherits the determinism
        // guarantee of the sharded path.
        let dsyb = sample_dsyb();
        let dseq = dsyb.to_sequence_database(3).unwrap();
        let input = MiningInput::new(&dsyb, &dseq, 3);
        let sequential = AStpmMiner::new().mine_with(&input, &config()).unwrap();
        let parallel = AStpmMiner::new()
            .mine_with(&input, &config().with_threads(4))
            .unwrap();
        assert_eq!(parallel.patterns(), sequential.patterns());
        assert_eq!(parallel.events(), sequential.events());
        assert_eq!(parallel.pattern_set(), sequential.pattern_set());
        assert_eq!(
            parallel.pruning().kept_series,
            sequential.pruning().kept_series
        );
    }

    #[test]
    fn accuracy_of_identical_reports_is_100() {
        let dsyb = sample_dsyb();
        let report = mine(&dsyb, &AStpmMiner::new());
        assert!((accuracy(&report, &report) - 100.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dseq was built with mapping factor 3")]
    fn inconsistent_mapping_factor_is_rejected_at_construction() {
        // A bundle whose mapping factor does not match the one dseq was built
        // with would make A-STPM silently re-map a different database, so
        // MiningInput rejects it up front.
        let dsyb = sample_dsyb();
        let dseq = dsyb.to_sequence_database(3).unwrap();
        let _ = MiningInput::new(&dsyb, &dseq, 1000);
    }

    #[test]
    fn report_time_components_are_consistent() {
        let dsyb = sample_dsyb();
        let report = mine(&dsyb, &AStpmMiner::new());
        assert_eq!(
            report.total_time(),
            report.phase_time(phases::MI) + report.phase_time(phases::PATTERNS)
        );
        assert_eq!(report.engine(), "A-STPM");
    }
}
