//! # stpm-approx
//!
//! Approximate Seasonal Temporal Pattern Mining (**A-STPM**, Section V of
//! "Mining Seasonal Temporal Patterns in Time Series", ICDE 2023).
//!
//! A-STPM prunes *unpromising time series* before mining: two symbolic series
//! are *correlated* when their normalised mutual information (NMI) reaches a
//! threshold μ that is derived — through the Lambert-W lower bound of
//! Theorem 1 — from the seasonality thresholds `minSeason` and `minDensity`.
//! Only correlated series are handed to the exact miner, which makes A-STPM
//! up to an order of magnitude faster and leaner on large databases while
//! keeping accuracy high.
//!
//! The crate provides:
//!
//! * Shannon entropy, conditional entropy, mutual information and NMI over
//!   symbolic series ([`info`]),
//! * the Lambert W function used by the bound ([`lambert`]),
//! * the `maxSeason` lower bound of Theorem 1 and the μ derivation of
//!   Corollary 1.1 ([`bound`]),
//! * the approximate mining engine itself ([`miner`]), implementing the
//!   workspace-wide [`MiningEngine`](stpm_core::MiningEngine) trait.
//!
//! ## Example
//!
//! ```
//! use stpm_timeseries::{SymbolicDatabase, SymbolicSeries, Alphabet};
//! use stpm_core::{MiningEngine, MiningInput, StpmConfig, Threshold};
//! use stpm_approx::AStpmMiner;
//!
//! let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
//! let c = SymbolicSeries::from_labels(
//!     "C", &["1","1","0", "1","0","0", "1","1","0", "0","0","0"], alphabet.clone()).unwrap();
//! let d = SymbolicSeries::from_labels(
//!     "D", &["1","0","0", "1","0","0", "1","1","0", "1","1","0"], alphabet).unwrap();
//! let dsyb = SymbolicDatabase::new(vec![c, d]).unwrap();
//! let dseq = dsyb.to_sequence_database(3).unwrap();
//!
//! let config = StpmConfig {
//!     max_period: Threshold::Absolute(2),
//!     min_density: Threshold::Absolute(2),
//!     dist_interval: (1, 10),
//!     min_season: 1,
//!     ..StpmConfig::default()
//! };
//! let input = MiningInput::new(&dsyb, &dseq, 3);
//! let report = AStpmMiner::new().mine_with(&input, &config).unwrap();
//! assert!(report.pruning().kept_series.len() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound;
pub mod info;
pub mod lambert;
pub mod miner;

pub use bound::{max_season_lower_bound, mu_threshold, pair_mu_threshold};
pub use info::{conditional_entropy, entropy_of, mutual_information, normalized_mi, NmiMatrix};
pub use lambert::lambert_w0;
pub use miner::AStpmMiner;
