//! # FreqSTPfTS — Frequent Seasonal Temporal Pattern Mining from Time Series
//!
//! A Rust implementation of the FreqSTPfTS system from
//! *"Mining Seasonal Temporal Patterns in Time Series"* (ICDE 2023):
//! the exact miner **E-STPM**, the mutual-information-based approximate miner
//! **A-STPM**, the **APS-growth** baseline, the data-transformation
//! substrate, and the synthetic workload generators used by the evaluation
//! harness.
//!
//! This facade crate re-exports the public API of the workspace crates and
//! adds the [`Pipeline`] builder for the common "raw series in, seasonal
//! patterns out" case. All three miners implement the
//! [`MiningEngine`] trait and are selected with
//! [`Engine`]; every run returns the unified
//! [`EngineReport`].
//!
//! ```
//! use freqstpfts::prelude::*;
//!
//! // 1. Raw time series (two appliances sampled every 5 minutes).
//! let series = vec![
//!     TimeSeries::new("Cooker", vec![1.8, 1.2, 0.0, 1.1, 0.0, 0.0, 1.3, 1.4, 0.0, 0.0, 0.0, 0.0]),
//!     TimeSeries::new("Dishes", vec![2.0, 0.0, 0.0, 1.4, 0.0, 0.0, 1.2, 1.5, 0.0, 1.2, 1.1, 0.0]),
//! ];
//!
//! // 2. Configure thresholds and mine, mapping 3 raw samples per granule.
//! let config = StpmConfig {
//!     max_period: Threshold::Absolute(2),
//!     min_density: Threshold::Absolute(2),
//!     dist_interval: (1, 10),
//!     min_season: 1,
//!     ..StpmConfig::default()
//! };
//! let outcome = Pipeline::builder()
//!     .symbolizer(ThresholdSymbolizer::binary(0.5, "Off", "On"))
//!     .mapping_factor(3)
//!     .engine(Engine::Exact)
//!     .thresholds(config)
//!     .run(&series)
//!     .unwrap();
//! assert!(outcome.report.total_patterns() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use stpm_approx as approx;
pub use stpm_baseline as baseline;
pub use stpm_core as core;
pub use stpm_datagen as datagen;
pub use stpm_timeseries as timeseries;

use stpm_approx::AStpmMiner;
use stpm_baseline::ApsGrowth;
use stpm_core::fault::{failpoints, MemoryBudget, RealFs, RetryPolicy, StorageBackend};
use stpm_core::snapshot::{self, ByteReader, ByteWriter, CheckpointMeta};
use stpm_core::{
    EngineReport, MiningEngine, MiningInput, MiningReport, StpmConfig, StpmMiner, StreamingMiner,
};
use stpm_timeseries::{
    Alphabet, SequenceDatabase, SymbolId, SymbolicDatabase, SymbolicSeries, Symbolizer, TimeSeries,
};

/// The most commonly used items of the whole workspace, importable with a
/// single `use freqstpfts::prelude::*`.
pub mod prelude {
    pub use crate::{
        Engine, Pipeline, PipelineError, PipelineOutcome, RecoveryReport, StreamingPipeline,
    };
    pub use stpm_approx::AStpmMiner;
    pub use stpm_baseline::ApsGrowth;
    pub use stpm_core::{
        accuracy, failpoints, CheckpointMeta, EngineReport, FaultyFs, MemoryBudget, MinedPattern,
        MiningEngine, MiningInput, MiningReport, PruningMode, RealFs, RelationKind, RetryPolicy,
        StorageBackend, StpmConfig, StpmMiner, StreamingMiner, TemporalPattern, Threshold,
    };
    pub use stpm_datagen::{generate, DatasetProfile, DatasetSpec};
    pub use stpm_timeseries::{
        Alphabet, EqualWidthSymbolizer, EventLabel, QuantileSymbolizer, SaxSymbolizer,
        SequenceDatabase, SymbolicDatabase, SymbolicSeries, Symbolizer, ThresholdSymbolizer,
        TimeSeries,
    };
}

/// Which mining engine a [`Pipeline`] runs. Each variant instantiates one of
/// the paper's three contenders; custom engines can be plugged in with
/// [`Pipeline::engine_impl`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Engine {
    /// The exact miner E-STPM (`stpm-core`).
    Exact,
    /// The approximate miner A-STPM (`stpm-approx`). With `mu: None` the µ
    /// threshold is derived from the seasonality thresholds via the Lambert-W
    /// bound (the paper's default); with `mu: Some(x)` it is fixed to `x`.
    Approximate {
        /// Optional fixed µ threshold.
        mu: Option<f64>,
    },
    /// The APS-growth baseline (`stpm-baseline`).
    ApsGrowth,
}

impl Engine {
    /// Instantiates the engine.
    #[must_use]
    pub fn instantiate(&self) -> Box<dyn MiningEngine> {
        match self {
            Engine::Exact => Box::new(StpmMiner),
            Engine::Approximate { mu: None } => Box::new(AStpmMiner::new()),
            Engine::Approximate { mu: Some(mu) } => Box::new(AStpmMiner::with_mu(*mu)),
            Engine::ApsGrowth => Box::new(ApsGrowth),
        }
    }
}

/// Everything a pipeline run produces: the intermediate databases (useful for
/// inspection and for running other engines on the same data) plus the
/// engine's unified report.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The symbolic database `D_SYB` — `Some` when the pipeline built it from
    /// raw series ([`Pipeline::run`]); `None` when the caller supplied it
    /// ([`Pipeline::run_symbolic`]), since the caller already owns that
    /// database and cloning it per run would be pure overhead in sweep loops.
    pub dsyb: Option<SymbolicDatabase>,
    /// The temporal sequence database `D_SEQ`.
    pub dseq: SequenceDatabase,
    /// The engine's report: frequent seasonal events and patterns, per-phase
    /// timings and pruning statistics.
    pub report: EngineReport,
}

/// Errors of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// `run(&[TimeSeries])` was called on a pipeline without a symbolizer.
    MissingSymbolizer,
    /// The data-transformation phase failed.
    Transform(stpm_timeseries::Error),
    /// The mining phase failed.
    Mining(stpm_core::Error),
    /// Snapshot, write-ahead-log or recovery handling failed — a typed
    /// [`stpm_core::Error`] snapshot variant (corruption, version, config
    /// mismatch or I/O).
    Persistence(stpm_core::Error),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::MissingSymbolizer => write!(
                f,
                "pipeline has no symbolizer: call .symbolizer(...) before .run(...), \
                 or symbolize yourself and call .run_symbolic(...)"
            ),
            PipelineError::Transform(e) => write!(f, "data transformation failed: {e}"),
            PipelineError::Mining(e) => write!(f, "mining failed: {e}"),
            PipelineError::Persistence(e) => write!(f, "persistence failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// The end-to-end FreqSTPfTS pipeline: symbolization → sequence mapping →
/// seasonal temporal pattern mining, with the engine chosen per run.
///
/// The builder methods are chainable and the terminal methods ([`run`],
/// [`run_symbolic`]) borrow the pipeline, so one configured pipeline can mine
/// many datasets.
///
/// [`run`]: Pipeline::run
/// [`run_symbolic`]: Pipeline::run_symbolic
pub struct Pipeline {
    symbolizer: Option<Box<dyn Symbolizer + Send>>,
    mapping_factor: u64,
    config: StpmConfig,
    threads: Option<usize>,
    engine: Box<dyn MiningEngine>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::builder()
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("symbolizer", &self.symbolizer.is_some())
            .field("mapping_factor", &self.mapping_factor)
            .field("config", &self.config)
            .field("threads", &self.threads)
            .field("engine", &self.engine.name())
            .finish()
    }
}

impl Pipeline {
    /// Starts a pipeline with defaults: no symbolizer, mapping factor 1,
    /// default thresholds, the exact engine.
    #[must_use]
    pub fn builder() -> Self {
        Self {
            symbolizer: None,
            mapping_factor: 1,
            config: StpmConfig::default(),
            threads: None,
            engine: Box::new(StpmMiner),
        }
    }

    /// Sets the symbolizer applied to every raw series by [`Pipeline::run`].
    /// Pipelines that start from an already-symbolized database
    /// ([`Pipeline::run_symbolic`]) do not need one.
    #[must_use]
    pub fn symbolizer(mut self, symbolizer: impl Symbolizer + Send + 'static) -> Self {
        self.symbolizer = Some(Box::new(symbolizer));
        self
    }

    /// Sets the sequence-mapping factor `m` (raw instants per `D_SEQ`
    /// granule). Defaults to 1.
    #[must_use]
    pub fn mapping_factor(mut self, m: u64) -> Self {
        self.mapping_factor = m;
        self
    }

    /// Sets the seasonality thresholds. Defaults to [`StpmConfig::default`].
    #[must_use]
    pub fn thresholds(mut self, config: StpmConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the number of worker threads the mining engines use per candidate
    /// level (`0` = all available cores). Mining output is identical for
    /// every thread count. Takes precedence over [`StpmConfig::threads`]
    /// regardless of the order the builder methods are called in.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Selects one of the built-in engines. Defaults to [`Engine::Exact`].
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine.instantiate();
        self
    }

    /// Plugs in a custom [`MiningEngine`] implementation.
    #[must_use]
    pub fn engine_impl(mut self, engine: Box<dyn MiningEngine>) -> Self {
        self.engine = engine;
        self
    }

    /// Name of the currently selected engine.
    #[must_use]
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Runs the full pipeline on raw time series: symbolization with the
    /// configured symbolizer, sequence mapping, mining with the configured
    /// engine.
    ///
    /// # Errors
    /// [`PipelineError::MissingSymbolizer`] when no symbolizer was set;
    /// otherwise propagates validation errors from either phase.
    pub fn run(&self, series: &[TimeSeries]) -> Result<PipelineOutcome, PipelineError> {
        let symbolizer = self
            .symbolizer
            .as_deref()
            .ok_or(PipelineError::MissingSymbolizer)?;
        let symbolic: Result<Vec<_>, _> = series.iter().map(|s| symbolizer.symbolize(s)).collect();
        let dsyb = SymbolicDatabase::new(symbolic.map_err(PipelineError::Transform)?)
            .map_err(PipelineError::Transform)?;
        let (dseq, report) = self.mine_symbolic(&dsyb)?;
        Ok(PipelineOutcome {
            dsyb: Some(dsyb),
            dseq,
            report,
        })
    }

    /// Runs the pipeline from an already-symbolized database — the entry
    /// point for data symbolized with per-series symbolizers
    /// ([`SymbolicDatabase::from_series_with`]) or produced by the dataset
    /// generators. The outcome's `dsyb` is `None`: the caller keeps ownership
    /// of the database it passed in.
    ///
    /// # Errors
    /// Propagates sequence-mapping and mining errors.
    pub fn run_symbolic(&self, dsyb: &SymbolicDatabase) -> Result<PipelineOutcome, PipelineError> {
        let (dseq, report) = self.mine_symbolic(dsyb)?;
        Ok(PipelineOutcome {
            dsyb: None,
            dseq,
            report,
        })
    }

    /// Converts the configured pipeline into a [`StreamingPipeline`] that
    /// absorbs raw-sample batches incrementally instead of mining one fixed
    /// database — the builder (symbolizer, mapping factor, thresholds,
    /// threads) is reused as-is. The streaming engine is the exact miner;
    /// an [`Engine`] selection made on the builder is ignored.
    #[must_use]
    pub fn into_streaming(self) -> StreamingPipeline {
        let mut config = self.config;
        if let Some(threads) = self.threads {
            config.threads = threads;
        }
        StreamingPipeline {
            symbolizer: self.symbolizer,
            mapping_factor: self.mapping_factor,
            config,
            state: None,
            wal: None,
            storage: Box::new(RealFs),
            retry: RetryPolicy::default(),
            budget: None,
            spill_path: None,
            io_retries: 0,
        }
    }

    fn mine_symbolic(
        &self,
        dsyb: &SymbolicDatabase,
    ) -> Result<(SequenceDatabase, EngineReport), PipelineError> {
        let dseq = dsyb
            .to_sequence_database(self.mapping_factor)
            .map_err(PipelineError::Transform)?;
        let input = MiningInput::new(dsyb, &dseq, self.mapping_factor);
        let mut config = self.config.clone();
        if let Some(threads) = self.threads {
            config.threads = threads;
        }
        let report = self
            .engine
            .mine_with(&input, &config)
            .map_err(PipelineError::Mining)?;
        Ok((dseq, report))
    }
}

/// The accumulated state of a [`StreamingPipeline`] once the first batch has
/// arrived: the growing databases plus the incremental miner over them.
struct StreamState {
    dsyb: SymbolicDatabase,
    dseq: SequenceDatabase,
    miner: MinerSlot,
}

/// Where the incremental miner currently lives: in memory, or spilled to a
/// cold file because a [`MemoryBudget`] was exceeded. The raw databases
/// (`dsyb`/`dseq`) always stay in memory — the budget targets the miner's
/// pattern arenas and season trackers, which dominate the footprint.
enum MinerSlot {
    /// The miner is live in memory (boxed: the miner dwarfs the spilled
    /// variant, and moving the slot should not copy the arenas).
    Live(Box<StreamingMiner>),
    /// The miner was spilled; only its checkpoint position is retained.
    Spilled(SpilledMiner),
}

/// What remains in memory of a spilled miner: the checkpoint position the
/// cold file was written under, used to answer observability queries without
/// rehydrating and to restore the pending-granule watermark on rehydration.
struct SpilledMiner {
    meta: CheckpointMeta,
}

impl MinerSlot {
    /// The miner's checkpoint position, served from memory in both states.
    fn meta(&self) -> CheckpointMeta {
        match self {
            MinerSlot::Live(miner) => miner.checkpoint_meta(),
            MinerSlot::Spilled(spilled) => spilled.meta,
        }
    }
}

/// The streaming counterpart of [`Pipeline`]: raw samples arrive in batches,
/// are symbolized once (only the new samples), folded into the growing
/// `D_SYB`/`D_SEQ`, and absorbed by the incremental
/// [`StreamingMiner`] — every [`append`](StreamingPipeline::append) returns a
/// checkpoint report that is exactly what a batch re-mine of the full prefix
/// would report.
///
/// Built from a configured [`Pipeline`] via [`Pipeline::into_streaming`]:
///
/// ```
/// use freqstpfts::prelude::*;
///
/// let config = StpmConfig {
///     max_period: Threshold::Absolute(2),
///     min_density: Threshold::Absolute(2),
///     dist_interval: (1, 10),
///     min_season: 1,
///     ..StpmConfig::default()
/// };
/// let mut stream = Pipeline::builder()
///     .symbolizer(ThresholdSymbolizer::binary(0.5, "Off", "On"))
///     .mapping_factor(3)
///     .thresholds(config)
///     .into_streaming();
/// // Day one: six samples (two granules).
/// stream.append(&[
///     TimeSeries::new("Cooker", vec![1.8, 1.2, 0.0, 1.1, 0.0, 0.0]),
///     TimeSeries::new("Dishes", vec![2.0, 0.0, 0.0, 1.4, 0.0, 0.0]),
/// ]).unwrap();
/// // Day two: six more — only these are symbolized and mined.
/// let report = stream.append(&[
///     TimeSeries::new("Cooker", vec![1.3, 1.4, 0.0, 0.0, 0.0, 0.0]),
///     TimeSeries::new("Dishes", vec![1.2, 1.5, 0.0, 1.2, 1.1, 0.0]),
/// ]).unwrap();
/// assert_eq!(stream.num_granules(), 4);
/// assert!(report.total_patterns() > 0);
/// ```
///
/// Exactness across appends requires a *pointwise* symbolizer (one whose
/// encoding of a sample does not depend on later samples —
/// [`ThresholdSymbolizer`](stpm_timeseries::ThresholdSymbolizer), or any
/// symbolizer fitted once up front). Data-dependent symbolizers refitted per
/// batch would re-encode history differently than a batch run.
pub struct StreamingPipeline {
    symbolizer: Option<Box<dyn Symbolizer + Send>>,
    mapping_factor: u64,
    config: StpmConfig,
    state: Option<StreamState>,
    wal: Option<WalHandle>,
    /// Every filesystem operation of the persistence path goes through this
    /// backend — [`RealFs`] in production, a fault-injecting
    /// [`FaultyFs`](stpm_core::FaultyFs) under test.
    /// `Send + Sync` so a whole [`StreamingPipeline`] can move across the
    /// worker threads of a multi-tenant service.
    storage: Box<dyn StorageBackend + Send + Sync>,
    /// Applied to WAL appends, snapshot writes and recovery reads.
    retry: RetryPolicy,
    /// Optional cap on the live miner footprint; exceeding it spills the
    /// miner to `spill_path`.
    budget: Option<MemoryBudget>,
    /// Where a budget-exceeding miner is spilled. Always `Some` when
    /// `budget` is.
    spill_path: Option<std::path::PathBuf>,
    /// Transient I/O retries absorbed so far (surfaced through
    /// [`StreamingPipeline::checkpoint_meta`] and [`RecoveryReport`]).
    io_retries: u64,
}

/// An attached write-ahead log: the open file, its path (kept so
/// recovery-time truncation can reopen it), and the durable length appends
/// continue from — tracked so a torn retried append can first truncate away
/// its own partial write, keeping every successfully acknowledged record
/// reachable to `wal_read`'s longest-durable-prefix scan.
struct WalHandle {
    file: Box<dyn stpm_core::StorageFile + Send>,
    path: std::path::PathBuf,
    len: u64,
}

impl std::fmt::Debug for StreamingPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingPipeline")
            .field("symbolizer", &self.symbolizer.is_some())
            .field("mapping_factor", &self.mapping_factor)
            .field("config", &self.config)
            .field("num_granules", &self.num_granules())
            .field(
                "wal",
                &self.wal.as_ref().map(|w| w.path.display().to_string()),
            )
            .field("budget", &self.budget)
            .field("io_retries", &self.io_retries)
            .finish()
    }
}

impl StreamingPipeline {
    /// Symbolizes a batch of raw samples with the configured symbolizer and
    /// absorbs it. Each [`TimeSeries`] carries the *new* samples of one
    /// series (same names and order on every call).
    ///
    /// # Errors
    /// [`PipelineError::MissingSymbolizer`] without a symbolizer; otherwise
    /// as [`StreamingPipeline::append_symbolic`].
    pub fn append(&mut self, batch: &[TimeSeries]) -> Result<EngineReport, PipelineError> {
        let symbolizer = self
            .symbolizer
            .as_deref()
            .ok_or(PipelineError::MissingSymbolizer)?;
        let symbolic: Result<Vec<_>, _> = batch.iter().map(|s| symbolizer.symbolize(s)).collect();
        let dsyb = SymbolicDatabase::new(symbolic.map_err(PipelineError::Transform)?)
            .map_err(PipelineError::Transform)?;
        self.append_symbolic(&dsyb)
    }

    /// Absorbs a batch of already-symbolized samples and returns the
    /// checkpoint report of the grown prefix. Samples that do not fill a
    /// complete granule stay pending until a later append completes them.
    ///
    /// With a write-ahead log attached ([`StreamingPipeline::attach_wal`]),
    /// the batch is additionally appended to the log and synced to disk
    /// before this method returns, so a crash before the next snapshot
    /// loses nothing durable.
    ///
    /// # Errors
    /// Transform errors when the batch does not continue the absorbed series
    /// set; mining errors from the incremental engine;
    /// [`PipelineError::Persistence`] when WAL logging fails after retries
    /// (the batch *is* absorbed in memory, but its durability is not
    /// guaranteed) or when a memory budget was exceeded and the spill
    /// itself failed ([`stpm_core::Error::BudgetExceeded`]; the batch is
    /// absorbed and durable, only the eviction fell through).
    // lint: durable
    pub fn append_symbolic(
        &mut self,
        batch: &SymbolicDatabase,
    ) -> Result<EngineReport, PipelineError> {
        let start_instants = self.state.as_ref().map_or(0, |s| s.dsyb.len() as u64);
        self.absorb_symbolic(batch)?;
        if let Some(wal) = self.wal.as_mut() {
            let record = snapshot::wal_encode_record(&encode_symbolic_batch(start_instants, batch));
            let retry = self.retry;
            let mut retries = 0_u64;
            let base_len = wal.len;
            let appended = retry.run(failpoints::WAL_APPEND, &mut retries, || {
                // Truncate first: a torn previous attempt left garbage after
                // `base_len`, and records written after garbage would be
                // unreachable to replay.
                wal.file.set_len(failpoints::WAL_APPEND, base_len)?;
                wal.file.write_all(failpoints::WAL_APPEND, &record)?;
                wal.file.sync_all(failpoints::WAL_APPEND_SYNC)
            });
            self.io_retries += retries;
            appended.map_err(|e| PipelineError::Persistence(stpm_core::Error::snapshot_io(&e)))?;
            wal.len = base_len + record.len() as u64;
        }
        // The batch is durable (or no durability was requested): it may now
        // be acknowledged with a checkpoint report.
        let report = self.checkpoint()?;
        self.enforce_budget()?;
        Ok(report)
    }

    /// Folds a symbolized batch into the in-memory state (databases + miner)
    /// without WAL logging and without emitting a checkpoint report — the
    /// shared core of [`StreamingPipeline::append_symbolic`] and WAL replay,
    /// where mining a full report per replayed record would make recovery
    /// cost records × report size instead of one absorb per record.
    fn absorb_symbolic(&mut self, batch: &SymbolicDatabase) -> Result<(), PipelineError> {
        if self.mapping_factor == 0 {
            return Err(PipelineError::Transform(
                stpm_timeseries::Error::InvalidGranularity {
                    reason: "the sequence-mapping factor m must be at least 1".into(),
                },
            ));
        }
        // A spilled miner must be back in memory before it can absorb.
        self.ensure_live()?;
        match &mut self.state {
            None => {
                let dsyb = batch.clone();
                let dseq = SequenceDatabase::from_sequences(
                    Vec::new(),
                    dsyb.registry().clone(),
                    self.mapping_factor,
                    dsyb.num_series(),
                );
                let miner = StreamingMiner::new(&self.config, dsyb.registry())
                    .map_err(PipelineError::Mining)?;
                self.state = Some(StreamState {
                    dsyb,
                    dseq,
                    miner: MinerSlot::Live(Box::new(miner)),
                });
            }
            Some(state) => {
                state
                    .dsyb
                    .append_batch(batch)
                    .map_err(PipelineError::Transform)?;
            }
        }
        let state = self.state.as_mut().expect("state was just initialised");
        let appended = state
            .dseq
            .append_from_symbolic(&state.dsyb)
            .map_err(PipelineError::Transform)?;
        let MinerSlot::Live(miner) = &mut state.miner else {
            unreachable!("ensure_live rehydrated the miner above");
        };
        miner
            .append_batch(appended)
            .map_err(PipelineError::Mining)?;
        Ok(())
    }

    /// Rehydrates a spilled miner from its cold file, restoring the
    /// pending-granule watermark the spill was taken under. A no-op when the
    /// miner is live (the common case — this is the degraded path's cost).
    fn ensure_live(&mut self) -> Result<(), PipelineError> {
        let Some(state) = &mut self.state else {
            return Ok(());
        };
        let MinerSlot::Spilled(spilled) = &state.miner else {
            return Ok(());
        };
        let meta = spilled.meta;
        let path = self
            .spill_path
            .clone()
            .ok_or_else(|| internal_error("a miner is spilled but no spill path is configured"))?;
        let retry = self.retry;
        let mut retries = 0_u64;
        let bytes = retry.run(failpoints::BUDGET_REHYDRATE_READ, &mut retries, || {
            self.storage.read(failpoints::BUDGET_REHYDRATE_READ, &path)
        });
        self.io_retries += retries;
        let bytes =
            bytes.map_err(|e| PipelineError::Persistence(stpm_core::Error::snapshot_io(&e)))?;
        let miner = StreamingMiner::rehydrate(&self.config, &bytes, meta.pending_granules)
            .map_err(PipelineError::Persistence)?;
        let state = self.state.as_mut().expect("state presence checked above");
        state.miner = MinerSlot::Live(Box::new(miner));
        Ok(())
    }

    /// Spills the live miner to the configured cold file when its footprint
    /// exceeds the memory budget. Called after every acknowledged append;
    /// a no-op without a budget or while under it.
    fn enforce_budget(&mut self) -> Result<(), PipelineError> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        let Some(state) = &mut self.state else {
            return Ok(());
        };
        let MinerSlot::Live(miner) = &state.miner else {
            return Ok(());
        };
        let live_bytes = miner.footprint_bytes() as u64;
        if !budget.is_exceeded_by(live_bytes) {
            return Ok(());
        }
        let path = self
            .spill_path
            .clone()
            .ok_or_else(|| internal_error("a memory budget is set but no spill path is"))?;
        let bytes = miner.encode_spill();
        let meta = miner.checkpoint_meta();
        let retry = self.retry;
        let mut retries = 0_u64;
        let written = retry.run(failpoints::BUDGET_SPILL_WRITE, &mut retries, || {
            let mut file = self.storage.create(failpoints::BUDGET_SPILL_WRITE, &path)?;
            file.write_all(failpoints::BUDGET_SPILL_WRITE, &bytes)
        });
        self.io_retries += retries;
        match written {
            Ok(()) => {
                // Only now may the live miner be dropped.
                let state = self.state.as_mut().expect("state presence checked above");
                state.miner = MinerSlot::Spilled(SpilledMiner { meta });
                Ok(())
            }
            // Graceful degradation has a typed failure mode of its own: the
            // miner stays live (nothing is lost), and the caller learns the
            // budget could not be honoured.
            Err(e) => Err(PipelineError::Persistence(
                stpm_core::Error::BudgetExceeded {
                    live_bytes,
                    budget_bytes: budget.max_live_bytes(),
                    reason: e.to_string(),
                },
            )),
        }
    }

    /// Emits the checkpoint report of everything absorbed so far without
    /// appending anything. Before the first *complete* granule the report is
    /// simply empty (zero granules, no patterns) — an append whose samples
    /// all stay pending is a success, not an error, so callers never retry
    /// (and thereby duplicate) a batch that was absorbed.
    ///
    /// # Errors
    /// Mining errors from the incremental engine.
    pub fn checkpoint(&self) -> Result<EngineReport, PipelineError> {
        match &self.state {
            Some(StreamState {
                miner: MinerSlot::Live(miner),
                ..
            }) if miner.num_granules() > 0 => miner.checkpoint().map_err(PipelineError::Mining),
            Some(StreamState {
                miner: MinerSlot::Spilled(spilled),
                ..
            }) if spilled.meta.granules_absorbed > 0 => {
                // Reporting on a spilled miner rehydrates a transient copy;
                // the persistent slot stays cold. Identical bytes in, so the
                // report is identical to an unconstrained run's.
                let miner = self.read_spilled(spilled)?;
                miner.checkpoint().map_err(PipelineError::Mining)
            }
            state => {
                // Nothing mined yet: an empty report over whatever registry
                // is known so far.
                let registry = state
                    .as_ref()
                    .map(|s| s.dsyb.registry().clone())
                    .unwrap_or_default();
                let total_series = registry.num_series();
                let pruning = stpm_core::PruningSummary {
                    kept_series: (0..total_series)
                        .map(|i| timeseries::SeriesId(u32::try_from(i).expect("series fits u32")))
                        .collect(),
                    total_series,
                    total_events: registry.num_events(),
                    ..stpm_core::PruningSummary::default()
                };
                Ok(EngineReport::new(
                    stpm_core::STREAMING_ENGINE_NAME,
                    MiningReport::default(),
                    registry,
                    Vec::new(),
                    pruning,
                    0,
                ))
            }
        }
    }

    /// Reads and decodes the spill file of a spilled miner without touching
    /// the pipeline's slot — shared by read-only reporting (`checkpoint`)
    /// which must not mutate, unlike `ensure_live`. Retry bookkeeping is
    /// local (a `&self` reader cannot update the pipeline counter).
    fn read_spilled(&self, spilled: &SpilledMiner) -> Result<StreamingMiner, PipelineError> {
        let path = self
            .spill_path
            .as_deref()
            .ok_or_else(|| internal_error("a miner is spilled but no spill path is configured"))?;
        let mut retries = 0_u64;
        let bytes = self
            .retry
            .run(failpoints::BUDGET_REHYDRATE_READ, &mut retries, || {
                self.storage.read(failpoints::BUDGET_REHYDRATE_READ, path)
            })
            .map_err(|e| PipelineError::Persistence(stpm_core::Error::snapshot_io(&e)))?;
        StreamingMiner::rehydrate(&self.config, &bytes, spilled.meta.pending_granules)
            .map_err(PipelineError::Persistence)
    }

    /// Number of complete granules absorbed so far.
    #[must_use]
    pub fn num_granules(&self) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.miner.meta().granules_absorbed)
    }

    /// Raw instants received that do not yet fill a complete granule.
    #[must_use]
    pub fn pending_instants(&self) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.dsyb.len() as u64 % self.mapping_factor.max(1))
    }

    /// The accumulated symbolic database, once the first batch has arrived.
    #[must_use]
    pub fn dsyb(&self) -> Option<&SymbolicDatabase> {
        self.state.as_ref().map(|s| &s.dsyb)
    }

    /// The accumulated temporal sequence database, once the first batch has
    /// arrived.
    #[must_use]
    pub fn dseq(&self) -> Option<&SequenceDatabase> {
        self.state.as_ref().map(|s| &s.dseq)
    }

    /// Granules absorbed since the most recent snapshot — the state a crash
    /// would lose without a write-ahead log. Zero before the first batch.
    #[must_use]
    pub fn pending_granules(&self) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.miner.meta().pending_granules)
    }

    /// The durable-state position of the underlying miner: checkpoint id,
    /// granules absorbed, patterns interned, granules pending since the last
    /// snapshot, and transient I/O retries absorbed by this pipeline.
    /// All-zero before the first batch. Reading it never forces a mine.
    #[must_use]
    pub fn checkpoint_meta(&self) -> CheckpointMeta {
        let mut meta = self.state.as_ref().map_or(
            CheckpointMeta {
                checkpoint_id: 0,
                granules_absorbed: 0,
                patterns_interned: 0,
                pending_granules: 0,
                io_retries: 0,
            },
            |s| s.miner.meta(),
        );
        meta.io_retries = self.io_retries;
        meta
    }

    /// Transient I/O retries absorbed by the persistence layer so far (WAL
    /// appends, snapshot writes, recovery and spill reads). A growing value
    /// under a healthy workload signals a degrading disk before it turns
    /// into permanent failures.
    #[must_use]
    pub fn io_retries(&self) -> u64 {
        self.io_retries
    }

    /// Approximate in-memory footprint of the pipeline's streaming state:
    /// the miner's arena footprint (zero while spilled) plus the growing
    /// symbolic and sequence databases. An estimate for admission-control
    /// and eviction accounting, not an allocator-exact measurement.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        let Some(state) = &self.state else {
            return 0;
        };
        let miner = match &state.miner {
            MinerSlot::Live(miner) => miner.footprint_bytes() as u64,
            MinerSlot::Spilled(_) => 0,
        };
        let series = state.dsyb.num_series() as u64;
        // 2 bytes per stored symbol (`SymbolId` is a u16) plus a nominal
        // per-granule instance overhead for the sequence database.
        let dsyb = state.dsyb.len() as u64 * series * 2;
        let dseq = state.dseq.num_granules() * series * 24;
        miner + dsyb + dseq
    }

    /// Replaces the storage backend every subsequent persistence operation
    /// goes through. [`RealFs`] by default; tests inject a
    /// [`FaultyFs`](stpm_core::FaultyFs) here. Call before
    /// [`attach_wal`](StreamingPipeline::attach_wal) — an already attached
    /// WAL keeps the handle it was opened with.
    pub fn set_storage(&mut self, storage: impl StorageBackend + Send + Sync + 'static) {
        self.storage = Box::new(storage);
    }

    /// Replaces the retry policy applied to WAL appends, snapshot writes
    /// and recovery reads. The default retries transient errors twice with
    /// 1 ms exponential backoff; [`RetryPolicy::none`] disables retrying.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Caps the live miner footprint at `budget`, spilling the miner to
    /// `spill_path` whenever an acknowledged append leaves it over the cap.
    /// The spill file is a process-lifetime cache, not durable state —
    /// crash recovery goes through the snapshot and WAL as always.
    pub fn set_memory_budget(
        &mut self,
        budget: MemoryBudget,
        spill_path: impl AsRef<std::path::Path>,
    ) {
        self.budget = Some(budget);
        self.spill_path = Some(spill_path.as_ref().to_path_buf());
    }

    /// Removes the memory budget. A currently spilled miner stays spilled
    /// until the next append rehydrates it.
    pub fn clear_memory_budget(&mut self) {
        self.budget = None;
    }
}

/// What [`StreamingPipeline::recover`] reconstructed on startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Granules restored from the snapshot (before WAL replay).
    pub restored_granules: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Whether the WAL was fully durable (`false` when a torn tail — the
    /// expected result of a crash mid-append — was dropped).
    pub wal_was_clean: bool,
    /// Transient I/O retries absorbed while reading the snapshot and WAL.
    pub io_retries: u64,
}

/// Facade-level section tags of a pipeline snapshot (`kind = 2`): the
/// pipeline parameters, the symbolic database, and an embedded miner
/// snapshot.
const SEC_PIPE: u32 = 0x10;
const SEC_DSYB: u32 = 0x11;
const SEC_MINER: u32 = 0x12;

impl StreamingPipeline {
    /// Serializes the pipeline's full durable state — mapping factor,
    /// symbolic database and the embedded miner snapshot — to the file at
    /// `path` **atomically and durably**, then truncates the attached
    /// write-ahead log (if any) back to its header: everything the log held
    /// is now covered by the snapshot.
    ///
    /// The bytes are written to a temporary sibling file, fsynced, renamed
    /// over `path`, and the parent directory is fsynced — so at every instant
    /// `path` holds either the complete previous snapshot or the complete new
    /// one, and the WAL is only truncated *after* the new snapshot is
    /// durable. A crash anywhere inside this method therefore loses nothing:
    /// recovery finds an intact snapshot plus a WAL that still covers
    /// whatever that snapshot does not.
    ///
    /// The symbolizer is *not* serialized (symbolizers are arbitrary user
    /// code); the restoring side configures it through the builder exactly as
    /// on first startup. To snapshot into something other than a file, see
    /// [`StreamingPipeline::snapshot_to_writer`].
    ///
    /// # Errors
    /// [`PipelineError::Persistence`] on write, sync, rename or
    /// WAL-truncation failures. On error the checkpoint accounting
    /// ([`pending_granules`](StreamingPipeline::pending_granules),
    /// [`checkpoint_meta`](StreamingPipeline::checkpoint_meta)) is unchanged
    /// and the WAL is left untouched, so the failed snapshot can simply be
    /// retried.
    // lint: durable
    pub fn snapshot_to(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), PipelineError> {
        let io = |e: &std::io::Error| PipelineError::Persistence(stpm_core::Error::snapshot_io(e));
        self.ensure_live()?;
        let path = path.as_ref();
        let bytes = self.encode_snapshot()?;
        let mut tmp_name = path
            .file_name()
            .map_or_else(|| "snapshot".into(), std::ffi::OsString::from);
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let retry = self.retry;
        let mut retries = 0_u64;
        let written = retry
            .run(failpoints::SNAPSHOT_WRITE, &mut retries, || {
                // Each attempt recreates (truncates) the tmp sibling, so a
                // torn previous attempt cannot leak into this one.
                let mut file = self.storage.create(failpoints::SNAPSHOT_CREATE_TMP, &tmp)?;
                file.write_all(failpoints::SNAPSHOT_WRITE, &bytes)?;
                file.sync_all(failpoints::SNAPSHOT_SYNC)
            })
            .and_then(|()| {
                retry.run(failpoints::SNAPSHOT_RENAME, &mut retries, || {
                    self.storage.rename(failpoints::SNAPSHOT_RENAME, &tmp, path)
                })
            })
            .and_then(|()| {
                // Make the rename itself durable before declaring the old
                // WAL contents covered.
                match parent_dir(path) {
                    Some(parent) => self.storage.sync_dir(failpoints::SNAPSHOT_DIR_SYNC, parent),
                    None => Ok(()),
                }
            });
        self.io_retries += retries;
        if let Err(e) = written {
            // Never leave the tmp sibling behind: a retry loop around a
            // failing snapshot must not accumulate orphans.
            let _ = self
                .storage
                .remove_file(failpoints::SNAPSHOT_REMOVE_TMP, &tmp);
            return Err(io(&e));
        }
        if let Some(StreamState {
            miner: MinerSlot::Live(miner),
            ..
        }) = &mut self.state
        {
            miner.mark_snapshot_durable();
        }
        self.reset_wal()
    }

    /// Serializes the same snapshot as [`StreamingPipeline::snapshot_to`] to
    /// an arbitrary writer — for callers persisting to object stores,
    /// sockets, or test buffers. Unlike `snapshot_to`, this does **not**
    /// truncate the write-ahead log: a generic writer gives no durability
    /// point, so the caller must make the bytes durable itself and only then
    /// call [`StreamingPipeline::reset_wal`]. Truncating earlier re-opens
    /// the crash window this subsystem exists to close.
    ///
    /// # Errors
    /// [`PipelineError::Persistence`] when the writer fails; the checkpoint
    /// accounting is then unchanged.
    pub fn snapshot_to_writer(
        &mut self,
        out: &mut impl std::io::Write,
    ) -> Result<(), PipelineError> {
        self.ensure_live()?;
        let bytes = self.encode_snapshot()?;
        // The probe gives fault plans a hook on this path even though the
        // writer itself is caller-supplied and outside the backend.
        self.storage
            .failpoint(failpoints::WRITER_WRITE)
            .and_then(|()| out.write_all(&bytes))
            .map_err(|e| PipelineError::Persistence(stpm_core::Error::snapshot_io(&e)))?;
        if let Some(StreamState {
            miner: MinerSlot::Live(miner),
            ..
        }) = &mut self.state
        {
            miner.mark_snapshot_durable();
        }
        Ok(())
    }

    /// Encodes the full pipeline snapshot without committing the miner's
    /// checkpoint bump (the embedded miner section carries the *next*
    /// checkpoint id; callers commit via `mark_snapshot_durable` once the
    /// bytes landed). Callers `ensure_live` first — a spilled miner cannot
    /// be encoded from its metadata alone.
    fn encode_snapshot(&self) -> Result<Vec<u8>, PipelineError> {
        let mut bytes = Vec::new();
        snapshot::write_header(&mut bytes, snapshot::KIND_PIPELINE);
        let mut pipe = ByteWriter::new();
        pipe.put_u64(self.mapping_factor);
        pipe.put_u8(u8::from(self.state.is_some()));
        snapshot::write_section(&mut bytes, SEC_PIPE, pipe.bytes());
        if let Some(state) = &self.state {
            let MinerSlot::Live(miner) = &state.miner else {
                return Err(internal_error(
                    "cannot encode a snapshot of a spilled miner — rehydrate first",
                ));
            };
            snapshot::write_section(&mut bytes, SEC_DSYB, &encode_dsyb(&state.dsyb));
            snapshot::write_section(&mut bytes, SEC_MINER, &miner.encode_snapshot());
        }
        Ok(bytes)
    }

    /// Replaces this pipeline's state with one restored from a snapshot
    /// produced by [`StreamingPipeline::snapshot_to`]. The pipeline's own
    /// configuration is re-validated against the snapshot: the mapping factor
    /// and the state-shaping mining parameters (ε, `d_o`, `maxPatternLen`)
    /// must match, while seasonality thresholds may differ (season trackers
    /// are then replayed under the new thresholds).
    ///
    /// # Errors
    /// [`PipelineError::Persistence`] wrapping the typed snapshot errors:
    /// corruption, a future format version, or a configuration mismatch.
    pub fn restore_from(&mut self, input: &mut impl std::io::Read) -> Result<(), PipelineError> {
        let mut bytes = Vec::new();
        input
            .read_to_end(&mut bytes)
            .map_err(|e| PipelineError::Persistence(stpm_core::Error::snapshot_io(&e)))?;
        self.state = decode_pipeline_state(&bytes, self.mapping_factor, &self.config)?;
        Ok(())
    }

    /// Attaches a write-ahead log at `path` (created with its header if
    /// missing or empty): every subsequent [`append`] /
    /// [`append_symbolic`] is logged and synced to disk before returning, so
    /// [`recover`] can replay batches that arrived after the last snapshot.
    ///
    /// An existing file is validated before anything is appended after it:
    /// a file that is not a WAL is rejected, and a torn tail (the remains of
    /// a crash mid-append) is truncated to the longest durable prefix —
    /// records appended after a torn record would be forever unreachable to
    /// replay. Note that attaching does *not* replay the log into this
    /// pipeline; [`recover`] is the supported way to adopt a WAL whose
    /// records are not already reflected in the in-memory state.
    ///
    /// [`append`]: StreamingPipeline::append
    /// [`append_symbolic`]: StreamingPipeline::append_symbolic
    /// [`recover`]: StreamingPipeline::recover
    ///
    /// # Errors
    /// [`PipelineError::Persistence`] on I/O failures or when `path` holds a
    /// file whose header is not a supported WAL header.
    // lint: durable
    pub fn attach_wal(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), PipelineError> {
        let io = |e: &std::io::Error| PipelineError::Persistence(stpm_core::Error::snapshot_io(e));
        let path = path.as_ref().to_path_buf();
        let mut file = self
            .storage
            .open_append(failpoints::WAL_OPEN, &path)
            .map_err(|e| io(&e))?;
        let mut bytes = Vec::new();
        file.read_to_end(failpoints::WAL_READ, &mut bytes)
            .map_err(|e| io(&e))?;
        let len = if bytes.is_empty() {
            file.write_all(failpoints::WAL_WRITE_HEADER, &snapshot::wal_header())
                .map_err(|e| io(&e))?;
            file.sync_all(failpoints::WAL_HEADER_SYNC)
                .map_err(|e| io(&e))?;
            // The header is durable, but the *name* of a freshly created WAL
            // is not until its directory entry is — without this, a crash
            // after the first acknowledged append could lose the whole log.
            if let Some(parent) = parent_dir(&path) {
                self.storage
                    .sync_dir(failpoints::WAL_DIR_SYNC, parent)
                    .map_err(|e| io(&e))?;
            }
            snapshot::wal_header().len() as u64
        } else {
            let contents = snapshot::wal_read(&bytes).map_err(PipelineError::Persistence)?;
            if !contents.clean {
                file.set_len(failpoints::WAL_TRUNCATE_TAIL, contents.durable_len)
                    .map_err(|e| io(&e))?;
                file.sync_all(failpoints::WAL_TRUNCATE_TAIL)
                    .map_err(|e| io(&e))?;
            }
            contents.durable_len
        };
        self.wal = Some(WalHandle { file, path, len });
        Ok(())
    }

    /// Crash recovery on startup: restores the snapshot at `snapshot_path`
    /// (if given and present), replays every durable write-ahead-log record
    /// beyond it, truncates any torn WAL tail, and attaches the WAL for
    /// future appends. A missing *or empty* snapshot file and a missing WAL
    /// are not errors — the pipeline then simply starts empty (with a fresh
    /// WAL), so a first-boot daemon and a post-crash daemon share this one
    /// unconditional startup call. (An empty snapshot file is what a crash
    /// between creating and writing a non-atomic copy leaves behind; real
    /// [`snapshot_to`](StreamingPipeline::snapshot_to) files are never
    /// empty.)
    ///
    /// # Errors
    /// [`PipelineError::Persistence`] on corrupt snapshots, corrupt WAL
    /// headers, configuration mismatches or I/O failures;
    /// [`PipelineError::Transform`] / [`PipelineError::Mining`] when a
    /// replayed batch fails to absorb.
    pub fn recover(
        &mut self,
        snapshot_path: Option<&std::path::Path>,
        wal_path: &std::path::Path,
    ) -> Result<RecoveryReport, PipelineError> {
        let mut retries = 0_u64;
        let result = self.recover_inner(snapshot_path, wal_path, &mut retries);
        self.io_retries += retries;
        result
    }

    fn recover_inner(
        &mut self,
        snapshot_path: Option<&std::path::Path>,
        wal_path: &std::path::Path,
        retries: &mut u64,
    ) -> Result<RecoveryReport, PipelineError> {
        let io = |e: &std::io::Error| PipelineError::Persistence(stpm_core::Error::snapshot_io(e));
        self.state = None;
        self.wal = None;
        let retry = self.retry;
        if let Some(path) = snapshot_path {
            let read = retry.run(failpoints::RECOVER_READ_SNAPSHOT, retries, || {
                self.storage.read(failpoints::RECOVER_READ_SNAPSHOT, path)
            });
            match read {
                Ok(bytes) if bytes.is_empty() => {}
                Ok(bytes) => {
                    self.state = decode_pipeline_state(&bytes, self.mapping_factor, &self.config)?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io(&e)),
            }
        }
        let restored_granules = self.num_granules();
        let wal_bytes = match retry.run(failpoints::RECOVER_READ_WAL, retries, || {
            self.storage.read(failpoints::RECOVER_READ_WAL, wal_path)
        }) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io(&e)),
        };
        let contents = snapshot::wal_read(&wal_bytes).map_err(PipelineError::Persistence)?;
        let mut replayed_records = 0u64;
        for record in &contents.records {
            let (start, batch) =
                decode_symbolic_batch(record).map_err(PipelineError::Persistence)?;
            let current = self.state.as_ref().map_or(0, |s| s.dsyb.len() as u64);
            if start + batch.len() as u64 <= current {
                // The snapshot already covers this record (it was written
                // before the snapshot that a crash then prevented from
                // truncating the log).
                continue;
            }
            if start != current {
                return Err(PipelineError::Persistence(
                    stpm_core::Error::SnapshotCorrupt {
                        reason: format!(
                            "WAL record starts at instant {start} but {current} instants are \
                         reconstructed — the log does not continue the snapshot"
                        ),
                    },
                ));
            }
            // Absorb without a per-record checkpoint mine: recovery only
            // needs the final state, and [`attach_wal`] below truncates any
            // torn tail before new appends land.
            self.absorb_symbolic(&batch)?;
            replayed_records += 1;
        }
        self.attach_wal(wal_path)?;
        Ok(RecoveryReport {
            restored_granules,
            replayed_records,
            wal_was_clean: contents.clean,
            io_retries: *retries,
        })
    }

    /// Truncates the attached WAL (if any) back to its header — declares
    /// that everything the log held is durably covered elsewhere.
    /// [`StreamingPipeline::snapshot_to`] calls this automatically once its
    /// snapshot file is durable; callers of
    /// [`StreamingPipeline::snapshot_to_writer`] call it themselves, *after*
    /// their sink has made the snapshot bytes durable. A no-op without an
    /// attached WAL.
    ///
    /// # Errors
    /// [`PipelineError::Persistence`] on truncation or sync failures.
    pub fn reset_wal(&mut self) -> Result<(), PipelineError> {
        if let Some(wal) = &mut self.wal {
            let io =
                |e: &std::io::Error| PipelineError::Persistence(stpm_core::Error::snapshot_io(e));
            let header_len = snapshot::wal_header().len() as u64;
            wal.file
                .set_len(failpoints::WAL_RESET, header_len)
                .map_err(|e| io(&e))?;
            wal.file
                .sync_all(failpoints::WAL_RESET)
                .map_err(|e| io(&e))?;
            wal.len = header_len;
        }
        Ok(())
    }
}

/// The directory whose fsync commits a namespace operation on `path` (an
/// empty parent means the path is relative to the current directory).
fn parent_dir(path: &std::path::Path) -> Option<&std::path::Path> {
    path.parent().map(|parent| {
        if parent.as_os_str().is_empty() {
            std::path::Path::new(".")
        } else {
            parent
        }
    })
}

/// An invariant of the pipeline's own bookkeeping was violated (not an I/O
/// failure and not corrupt data).
fn internal_error(reason: &str) -> PipelineError {
    PipelineError::Persistence(stpm_core::Error::Internal {
        reason: reason.into(),
    })
}

/// Encodes the symbolic database for the `DSYB` snapshot section: per series,
/// its name, alphabet and full symbol vector.
fn encode_dsyb(dsyb: &SymbolicDatabase) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(u32::try_from(dsyb.num_series()).expect("series count fits u32"));
    for series in dsyb.series() {
        write_symbolic_series(&mut w, series);
    }
    w.into_bytes()
}

fn write_symbolic_series(w: &mut ByteWriter, series: &SymbolicSeries) {
    w.put_str(series.name());
    let labels = series.alphabet().labels();
    w.put_u32(u32::try_from(labels.len()).expect("alphabet fits u32"));
    for label in labels {
        w.put_str(label);
    }
    w.put_u64(series.symbols().len() as u64);
    for &symbol in series.symbols() {
        w.put_u16(symbol.0);
    }
}

fn read_symbolic_series(r: &mut ByteReader<'_>) -> Result<SymbolicSeries, stpm_core::Error> {
    let corrupt = |reason: String| stpm_core::Error::SnapshotCorrupt { reason };
    let name = r.take_str()?;
    let label_count = r.take_u32()?;
    if label_count > 1 << 16 {
        return Err(corrupt(format!(
            "alphabet of {label_count} symbols exceeds the u16 symbol space"
        )));
    }
    let mut labels = Vec::new();
    for _ in 0..label_count {
        labels.push(r.take_str()?);
    }
    let alphabet = Alphabet::new(labels)
        .map_err(|e| corrupt(format!("series `{name}` carries an invalid alphabet: {e}")))?;
    let symbol_count = r.take_u64()?;
    let symbol_count = usize::try_from(symbol_count)
        .map_err(|_| corrupt("symbol count exceeds address space".into()))?;
    let mut symbols = Vec::with_capacity(symbol_count.min(r.remaining() / 2 + 1));
    for _ in 0..symbol_count {
        let symbol = r.take_u16()?;
        if u32::from(symbol) >= label_count {
            return Err(corrupt(format!(
                "series `{name}` references symbol {symbol} outside its {label_count}-symbol \
                 alphabet"
            )));
        }
        symbols.push(SymbolId(symbol));
    }
    Ok(SymbolicSeries::new(name, symbols, alphabet))
}

fn decode_dsyb(payload: &[u8]) -> Result<SymbolicDatabase, stpm_core::Error> {
    let mut r = ByteReader::new(payload, "symbolic-database section");
    let num_series = r.take_u32()?;
    let mut series = Vec::new();
    for _ in 0..num_series {
        series.push(read_symbolic_series(&mut r)?);
    }
    r.finish()?;
    SymbolicDatabase::new(series).map_err(|e| stpm_core::Error::SnapshotCorrupt {
        reason: format!("symbolic database failed validation: {e}"),
    })
}

/// Encodes one appended symbolic batch as a self-contained WAL record
/// payload: the instant count the stream held before the batch, then the
/// batch itself.
fn encode_symbolic_batch(start_instants: u64, batch: &SymbolicDatabase) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(start_instants);
    w.put_u32(u32::try_from(batch.num_series()).expect("series count fits u32"));
    for series in batch.series() {
        write_symbolic_series(&mut w, series);
    }
    w.into_bytes()
}

fn decode_symbolic_batch(payload: &[u8]) -> Result<(u64, SymbolicDatabase), stpm_core::Error> {
    let mut r = ByteReader::new(payload, "WAL batch record");
    let start_instants = r.take_u64()?;
    let num_series = r.take_u32()?;
    let mut series = Vec::new();
    for _ in 0..num_series {
        series.push(read_symbolic_series(&mut r)?);
    }
    r.finish()?;
    let batch = SymbolicDatabase::new(series).map_err(|e| stpm_core::Error::SnapshotCorrupt {
        reason: format!("WAL batch failed validation: {e}"),
    })?;
    Ok((start_instants, batch))
}

/// Decodes a full pipeline snapshot, re-validating the restoring pipeline's
/// configuration against it.
fn decode_pipeline_state(
    bytes: &[u8],
    mapping_factor: u64,
    config: &StpmConfig,
) -> Result<Option<StreamState>, PipelineError> {
    let per = PipelineError::Persistence;
    let mut cursor = snapshot::parse_header(bytes, snapshot::KIND_PIPELINE).map_err(per)?;
    let pipe = snapshot::read_section(&mut cursor, SEC_PIPE).map_err(per)?;
    let mut r = ByteReader::new(pipe, "pipeline section");
    let stored_m = r.take_u64().map_err(per)?;
    if stored_m != mapping_factor {
        return Err(per(stpm_core::Error::SnapshotConfigMismatch {
            parameter: "mappingFactor",
            reason: format!(
                "snapshot maps {stored_m} instants per granule, this pipeline maps \
                 {mapping_factor} — granule boundaries cannot be replayed"
            ),
        }));
    }
    let has_state = match r.take_u8().map_err(per)? {
        0 => false,
        1 => true,
        tag => {
            return Err(per(stpm_core::Error::SnapshotCorrupt {
                reason: format!("pipeline section: unknown has-state tag {tag}"),
            }))
        }
    };
    r.finish().map_err(per)?;
    let corrupt =
        |reason: String| PipelineError::Persistence(stpm_core::Error::SnapshotCorrupt { reason });
    if !has_state {
        if !cursor.is_empty() {
            return Err(corrupt(format!(
                "{} trailing bytes after an empty pipeline snapshot",
                cursor.len()
            )));
        }
        return Ok(None);
    }
    let dsyb =
        decode_dsyb(snapshot::read_section(&mut cursor, SEC_DSYB).map_err(per)?).map_err(per)?;
    let miner_bytes = snapshot::read_section(&mut cursor, SEC_MINER).map_err(per)?;
    if !cursor.is_empty() {
        return Err(corrupt(format!(
            "{} trailing bytes after the last section",
            cursor.len()
        )));
    }
    let miner = StreamingMiner::restore_with(config, &mut &miner_bytes[..]).map_err(per)?;
    if miner.registry() != dsyb.registry() {
        return Err(corrupt(
            "the miner's event registry diverges from the symbolic database's".into(),
        ));
    }
    let mut dseq = SequenceDatabase::from_sequences(
        Vec::new(),
        dsyb.registry().clone(),
        mapping_factor,
        dsyb.num_series(),
    );
    dseq.append_from_symbolic(&dsyb)
        .map_err(PipelineError::Transform)?;
    if miner.num_granules() != dseq.num_granules() {
        return Err(corrupt(format!(
            "the miner absorbed {} granules but the symbolic database maps to {}",
            miner.num_granules(),
            dseq.num_granules()
        )));
    }
    Ok(Some(StreamState {
        dsyb,
        dseq,
        miner: MinerSlot::Live(Box::new(miner)),
    }))
}

/// Everything the legacy single-engine pipeline produced.
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// The symbolic database `D_SYB` built from the raw series.
    pub dsyb: SymbolicDatabase,
    /// The temporal sequence database `D_SEQ`.
    pub dseq: SequenceDatabase,
    /// The frequent seasonal events and patterns found by E-STPM.
    pub report: MiningReport,
}

/// Runs the full FreqSTPfTS pipeline on raw time series with the exact miner.
///
/// # Errors
/// Propagates validation errors from either phase.
#[deprecated(
    since = "0.2.0",
    note = "use `Pipeline::builder().symbolizer(...).mapping_factor(...).thresholds(...).run(...)` \
            — it supports all engines and returns the unified EngineReport"
)]
pub fn mine_seasonal_patterns<S: Symbolizer>(
    series: &[TimeSeries],
    symbolizer: &S,
    mapping_factor: u64,
    config: &StpmConfig,
) -> Result<MiningOutcome, PipelineError> {
    let dsyb =
        SymbolicDatabase::from_series(series, symbolizer).map_err(PipelineError::Transform)?;
    let dseq = dsyb
        .to_sequence_database(mapping_factor)
        .map_err(PipelineError::Transform)?;
    let input = MiningInput::new(&dsyb, &dseq, mapping_factor);
    let report = StpmMiner
        .mine_with(&input, config)
        .map_err(PipelineError::Mining)?
        .into_report();
    Ok(MiningOutcome { dsyb, dseq, report })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::PipelineError;

    fn sample_series() -> Vec<TimeSeries> {
        vec![
            TimeSeries::new("A", vec![1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0]),
            TimeSeries::new("B", vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0]),
        ]
    }

    fn sample_config() -> StpmConfig {
        StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(2),
            dist_interval: (1, 10),
            min_season: 1,
            ..StpmConfig::default()
        }
    }

    #[test]
    fn streaming_pipeline_is_send() {
        // The multi-tenant service tier moves whole pipelines across worker
        // threads; losing `Send` on any field would break it at a distance.
        fn assert_send<T: Send>() {}
        assert_send::<super::StreamingPipeline>();
    }

    #[test]
    fn pipeline_mines_the_quickstart_example() {
        let outcome = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(sample_config())
            .run(&sample_series())
            .unwrap();
        assert_eq!(outcome.dseq.num_granules(), 3);
        assert!(outcome.report.total_patterns() > 0);
        assert_eq!(outcome.report.engine(), "E-STPM");
    }

    #[test]
    fn every_builtin_engine_is_reachable_through_the_builder() {
        for engine in [
            Engine::Exact,
            Engine::Approximate { mu: None },
            Engine::Approximate { mu: Some(0.0) },
            Engine::ApsGrowth,
        ] {
            let pipeline = Pipeline::builder()
                .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
                .mapping_factor(3)
                .engine(engine)
                .thresholds(sample_config());
            let outcome = pipeline.run(&sample_series()).unwrap();
            assert_eq!(outcome.report.engine(), pipeline.engine_name());
            assert!(outcome.report.stats().num_granules <= 3);
        }
    }

    #[test]
    fn exact_and_zero_mu_approximate_agree() {
        let base = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(sample_config());
        let exact = base.run(&sample_series()).unwrap().report;
        let approx = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .engine(Engine::Approximate { mu: Some(0.0) })
            .thresholds(sample_config())
            .run(&sample_series())
            .unwrap()
            .report;
        assert!((accuracy(&exact, &approx) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn threads_knob_changes_nothing_but_wall_clock() {
        // The builder knob is order-insensitive w.r.t. thresholds() and flows
        // through every engine; parallel output equals sequential output.
        for engine in [Engine::Exact, Engine::Approximate { mu: None }] {
            let sequential = Pipeline::builder()
                .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
                .mapping_factor(3)
                .engine(engine)
                .thresholds(sample_config())
                .run(&sample_series())
                .unwrap();
            let parallel = Pipeline::builder()
                .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
                .mapping_factor(3)
                .engine(engine)
                .threads(3) // before thresholds(): must still win
                .thresholds(sample_config())
                .run(&sample_series())
                .unwrap();
            assert_eq!(
                parallel.report.pattern_set(),
                sequential.report.pattern_set()
            );
            assert_eq!(
                parallel.report.patterns(),
                sequential.report.patterns(),
                "parallel pattern order diverged for {engine:?}"
            );
        }
    }

    #[test]
    fn run_symbolic_accepts_prebuilt_databases() {
        let dsyb = SymbolicDatabase::from_series(
            &sample_series(),
            &ThresholdSymbolizer::binary(0.5, "0", "1"),
        )
        .unwrap();
        let outcome = Pipeline::builder()
            .mapping_factor(3)
            .thresholds(sample_config())
            .run_symbolic(&dsyb)
            .unwrap();
        assert!(outcome.report.total_patterns() > 0);
    }

    #[test]
    fn run_without_symbolizer_is_rejected() {
        let err = Pipeline::builder()
            .thresholds(sample_config())
            .run(&sample_series())
            .unwrap_err();
        assert_eq!(err, PipelineError::MissingSymbolizer);
        assert!(err.to_string().contains("symbolizer"));
    }

    #[test]
    fn pipeline_surfaces_transform_errors() {
        let err = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(StpmConfig::default())
            .run(&[TimeSeries::new("empty", vec![])])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Transform(_)));
        assert!(err.to_string().contains("transformation"));
    }

    #[test]
    fn pipeline_surfaces_mining_errors() {
        let config = StpmConfig {
            min_season: 0,
            ..StpmConfig::default()
        };
        let err = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(config)
            .run(&[TimeSeries::new("A", vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0])])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Mining(_)));
        assert!(err.to_string().contains("mining"));
    }

    #[test]
    fn streaming_pipeline_matches_the_batch_pipeline() {
        // Feed the quickstart series in three uneven batches (the second one
        // leaves a partial granule pending); the final checkpoint must agree
        // with the one-shot batch pipeline on the same data.
        let series = sample_series();
        let batch_outcome = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(sample_config())
            .run(&series)
            .unwrap();

        let mut stream = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(sample_config())
            .into_streaming();
        let chunk = |from: usize, to: usize| -> Vec<TimeSeries> {
            series
                .iter()
                .map(|s| TimeSeries::new(s.name(), s.values()[from..to].to_vec()))
                .collect()
        };
        stream.append(&chunk(0, 4)).unwrap();
        assert_eq!(stream.num_granules(), 1);
        assert_eq!(stream.pending_instants(), 1);
        stream.append(&chunk(4, 7)).unwrap();
        let report = stream.append(&chunk(7, 9)).unwrap();
        assert_eq!(stream.num_granules(), 3);
        assert_eq!(stream.pending_instants(), 0);
        assert_eq!(report.pattern_set(), batch_outcome.report.pattern_set());
        assert_eq!(
            stream.dseq().unwrap().sequences(),
            batch_outcome.dseq.sequences()
        );
        assert_eq!(stream.dsyb().unwrap().len(), 9);
        // A checkpoint without an append reproduces the same output.
        let again = stream.checkpoint().unwrap();
        assert_eq!(again.pattern_set(), report.pattern_set());
    }

    #[test]
    fn appends_that_complete_no_granule_succeed_without_duplicating_samples() {
        // Two samples per append at mapping factor 3: the first append
        // completes no granule and must succeed (empty report) — returning
        // an error there would invite callers to retry an already-absorbed
        // batch and corrupt the series. Three such appends = 6 samples =
        // 2 granules, identical to the one-shot run.
        let series = sample_series();
        let chunk = |from: usize, to: usize| -> Vec<TimeSeries> {
            series
                .iter()
                .map(|s| TimeSeries::new(s.name(), s.values()[from..to].to_vec()))
                .collect()
        };
        let mut stream = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(sample_config())
            .into_streaming();
        let pending = stream.append(&chunk(0, 2)).unwrap();
        assert_eq!(pending.total_patterns(), 0);
        assert_eq!(stream.num_granules(), 0);
        assert_eq!(stream.pending_instants(), 2);
        stream.append(&chunk(2, 4)).unwrap();
        let report = stream.append(&chunk(4, 6)).unwrap();
        assert_eq!(stream.num_granules(), 2);
        let batch = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(sample_config())
            .run(&chunk(0, 6))
            .unwrap();
        assert_eq!(report.pattern_set(), batch.report.pattern_set());
    }

    #[test]
    fn streaming_pipeline_rejects_misuse() {
        let mut no_symbolizer = Pipeline::builder()
            .mapping_factor(3)
            .thresholds(sample_config())
            .into_streaming();
        assert_eq!(
            no_symbolizer.append(&sample_series()).unwrap_err(),
            PipelineError::MissingSymbolizer
        );
        let empty = no_symbolizer.checkpoint().unwrap();
        assert_eq!(empty.total_patterns(), 0);
        assert_eq!(empty.stats().num_granules, 0);
        assert_eq!(no_symbolizer.num_granules(), 0);

        // A batch whose series set diverges from the first one is rejected.
        let mut stream = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(sample_config())
            .into_streaming();
        stream.append(&sample_series()).unwrap();
        let err = stream
            .append(&[TimeSeries::new("Z", vec![1.0, 0.0])])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Transform(_)));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrapper_still_mines() {
        let outcome = super::mine_seasonal_patterns(
            &sample_series(),
            &ThresholdSymbolizer::binary(0.5, "0", "1"),
            3,
            &sample_config(),
        )
        .unwrap();
        assert_eq!(outcome.dseq.num_granules(), 3);
        assert!(outcome.report.total_patterns() > 0);
    }

    #[test]
    fn engine_variants_instantiate_the_three_contenders() {
        let names: Vec<&str> = [
            Engine::Approximate { mu: None },
            Engine::Exact,
            Engine::ApsGrowth,
        ]
        .iter()
        .map(|e| e.instantiate().name())
        .collect();
        assert_eq!(names, vec!["A-STPM", "E-STPM", "APS-growth"]);
    }
}
