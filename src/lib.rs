//! # FreqSTPfTS — Frequent Seasonal Temporal Pattern Mining from Time Series
//!
//! A Rust implementation of the FreqSTPfTS system from
//! *"Mining Seasonal Temporal Patterns in Time Series"* (ICDE 2023):
//! the exact miner **E-STPM**, the mutual-information-based approximate miner
//! **A-STPM**, the **APS-growth** baseline, the data-transformation
//! substrate, and the synthetic workload generators used by the evaluation
//! harness.
//!
//! This facade crate re-exports the public API of the workspace crates and
//! adds the [`Pipeline`] builder for the common "raw series in, seasonal
//! patterns out" case. All three miners implement the
//! [`MiningEngine`] trait and are selected with
//! [`Engine`]; every run returns the unified
//! [`EngineReport`].
//!
//! ```
//! use freqstpfts::prelude::*;
//!
//! // 1. Raw time series (two appliances sampled every 5 minutes).
//! let series = vec![
//!     TimeSeries::new("Cooker", vec![1.8, 1.2, 0.0, 1.1, 0.0, 0.0, 1.3, 1.4, 0.0, 0.0, 0.0, 0.0]),
//!     TimeSeries::new("Dishes", vec![2.0, 0.0, 0.0, 1.4, 0.0, 0.0, 1.2, 1.5, 0.0, 1.2, 1.1, 0.0]),
//! ];
//!
//! // 2. Configure thresholds and mine, mapping 3 raw samples per granule.
//! let config = StpmConfig {
//!     max_period: Threshold::Absolute(2),
//!     min_density: Threshold::Absolute(2),
//!     dist_interval: (1, 10),
//!     min_season: 1,
//!     ..StpmConfig::default()
//! };
//! let outcome = Pipeline::builder()
//!     .symbolizer(ThresholdSymbolizer::binary(0.5, "Off", "On"))
//!     .mapping_factor(3)
//!     .engine(Engine::Exact)
//!     .thresholds(config)
//!     .run(&series)
//!     .unwrap();
//! assert!(outcome.report.total_patterns() > 0);
//! ```

#![warn(missing_docs)]

pub use stpm_approx as approx;
pub use stpm_baseline as baseline;
pub use stpm_core as core;
pub use stpm_datagen as datagen;
pub use stpm_timeseries as timeseries;

use stpm_approx::AStpmMiner;
use stpm_baseline::ApsGrowth;
use stpm_core::{EngineReport, MiningEngine, MiningInput, MiningReport, StpmConfig, StpmMiner};
use stpm_timeseries::{SequenceDatabase, SymbolicDatabase, Symbolizer, TimeSeries};

/// The most commonly used items of the whole workspace, importable with a
/// single `use freqstpfts::prelude::*`.
pub mod prelude {
    pub use crate::{Engine, Pipeline, PipelineError, PipelineOutcome};
    pub use stpm_approx::AStpmMiner;
    pub use stpm_baseline::ApsGrowth;
    pub use stpm_core::{
        accuracy, EngineReport, MinedPattern, MiningEngine, MiningInput, MiningReport, PruningMode,
        RelationKind, StpmConfig, StpmMiner, TemporalPattern, Threshold,
    };
    pub use stpm_datagen::{generate, DatasetProfile, DatasetSpec};
    pub use stpm_timeseries::{
        Alphabet, EqualWidthSymbolizer, EventLabel, QuantileSymbolizer, SaxSymbolizer,
        SequenceDatabase, SymbolicDatabase, SymbolicSeries, Symbolizer, ThresholdSymbolizer,
        TimeSeries,
    };
}

/// Which mining engine a [`Pipeline`] runs. Each variant instantiates one of
/// the paper's three contenders; custom engines can be plugged in with
/// [`Pipeline::engine_impl`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Engine {
    /// The exact miner E-STPM (`stpm-core`).
    Exact,
    /// The approximate miner A-STPM (`stpm-approx`). With `mu: None` the µ
    /// threshold is derived from the seasonality thresholds via the Lambert-W
    /// bound (the paper's default); with `mu: Some(x)` it is fixed to `x`.
    Approximate {
        /// Optional fixed µ threshold.
        mu: Option<f64>,
    },
    /// The APS-growth baseline (`stpm-baseline`).
    ApsGrowth,
}

impl Engine {
    /// Instantiates the engine.
    #[must_use]
    pub fn instantiate(&self) -> Box<dyn MiningEngine> {
        match self {
            Engine::Exact => Box::new(StpmMiner),
            Engine::Approximate { mu: None } => Box::new(AStpmMiner::new()),
            Engine::Approximate { mu: Some(mu) } => Box::new(AStpmMiner::with_mu(*mu)),
            Engine::ApsGrowth => Box::new(ApsGrowth),
        }
    }
}

/// Everything a pipeline run produces: the intermediate databases (useful for
/// inspection and for running other engines on the same data) plus the
/// engine's unified report.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The symbolic database `D_SYB` — `Some` when the pipeline built it from
    /// raw series ([`Pipeline::run`]); `None` when the caller supplied it
    /// ([`Pipeline::run_symbolic`]), since the caller already owns that
    /// database and cloning it per run would be pure overhead in sweep loops.
    pub dsyb: Option<SymbolicDatabase>,
    /// The temporal sequence database `D_SEQ`.
    pub dseq: SequenceDatabase,
    /// The engine's report: frequent seasonal events and patterns, per-phase
    /// timings and pruning statistics.
    pub report: EngineReport,
}

/// Errors of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// `run(&[TimeSeries])` was called on a pipeline without a symbolizer.
    MissingSymbolizer,
    /// The data-transformation phase failed.
    Transform(stpm_timeseries::Error),
    /// The mining phase failed.
    Mining(stpm_core::Error),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::MissingSymbolizer => write!(
                f,
                "pipeline has no symbolizer: call .symbolizer(...) before .run(...), \
                 or symbolize yourself and call .run_symbolic(...)"
            ),
            PipelineError::Transform(e) => write!(f, "data transformation failed: {e}"),
            PipelineError::Mining(e) => write!(f, "mining failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// The end-to-end FreqSTPfTS pipeline: symbolization → sequence mapping →
/// seasonal temporal pattern mining, with the engine chosen per run.
///
/// The builder methods are chainable and the terminal methods ([`run`],
/// [`run_symbolic`]) borrow the pipeline, so one configured pipeline can mine
/// many datasets.
///
/// [`run`]: Pipeline::run
/// [`run_symbolic`]: Pipeline::run_symbolic
pub struct Pipeline {
    symbolizer: Option<Box<dyn Symbolizer>>,
    mapping_factor: u64,
    config: StpmConfig,
    threads: Option<usize>,
    engine: Box<dyn MiningEngine>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::builder()
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("symbolizer", &self.symbolizer.is_some())
            .field("mapping_factor", &self.mapping_factor)
            .field("config", &self.config)
            .field("threads", &self.threads)
            .field("engine", &self.engine.name())
            .finish()
    }
}

impl Pipeline {
    /// Starts a pipeline with defaults: no symbolizer, mapping factor 1,
    /// default thresholds, the exact engine.
    #[must_use]
    pub fn builder() -> Self {
        Self {
            symbolizer: None,
            mapping_factor: 1,
            config: StpmConfig::default(),
            threads: None,
            engine: Box::new(StpmMiner),
        }
    }

    /// Sets the symbolizer applied to every raw series by [`Pipeline::run`].
    /// Pipelines that start from an already-symbolized database
    /// ([`Pipeline::run_symbolic`]) do not need one.
    #[must_use]
    pub fn symbolizer(mut self, symbolizer: impl Symbolizer + 'static) -> Self {
        self.symbolizer = Some(Box::new(symbolizer));
        self
    }

    /// Sets the sequence-mapping factor `m` (raw instants per `D_SEQ`
    /// granule). Defaults to 1.
    #[must_use]
    pub fn mapping_factor(mut self, m: u64) -> Self {
        self.mapping_factor = m;
        self
    }

    /// Sets the seasonality thresholds. Defaults to [`StpmConfig::default`].
    #[must_use]
    pub fn thresholds(mut self, config: StpmConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the number of worker threads the mining engines use per candidate
    /// level (`0` = all available cores). Mining output is identical for
    /// every thread count. Takes precedence over [`StpmConfig::threads`]
    /// regardless of the order the builder methods are called in.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Selects one of the built-in engines. Defaults to [`Engine::Exact`].
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine.instantiate();
        self
    }

    /// Plugs in a custom [`MiningEngine`] implementation.
    #[must_use]
    pub fn engine_impl(mut self, engine: Box<dyn MiningEngine>) -> Self {
        self.engine = engine;
        self
    }

    /// Name of the currently selected engine.
    #[must_use]
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Runs the full pipeline on raw time series: symbolization with the
    /// configured symbolizer, sequence mapping, mining with the configured
    /// engine.
    ///
    /// # Errors
    /// [`PipelineError::MissingSymbolizer`] when no symbolizer was set;
    /// otherwise propagates validation errors from either phase.
    pub fn run(&self, series: &[TimeSeries]) -> Result<PipelineOutcome, PipelineError> {
        let symbolizer = self
            .symbolizer
            .as_deref()
            .ok_or(PipelineError::MissingSymbolizer)?;
        let symbolic: Result<Vec<_>, _> = series.iter().map(|s| symbolizer.symbolize(s)).collect();
        let dsyb = SymbolicDatabase::new(symbolic.map_err(PipelineError::Transform)?)
            .map_err(PipelineError::Transform)?;
        let (dseq, report) = self.mine_symbolic(&dsyb)?;
        Ok(PipelineOutcome {
            dsyb: Some(dsyb),
            dseq,
            report,
        })
    }

    /// Runs the pipeline from an already-symbolized database — the entry
    /// point for data symbolized with per-series symbolizers
    /// ([`SymbolicDatabase::from_series_with`]) or produced by the dataset
    /// generators. The outcome's `dsyb` is `None`: the caller keeps ownership
    /// of the database it passed in.
    ///
    /// # Errors
    /// Propagates sequence-mapping and mining errors.
    pub fn run_symbolic(&self, dsyb: &SymbolicDatabase) -> Result<PipelineOutcome, PipelineError> {
        let (dseq, report) = self.mine_symbolic(dsyb)?;
        Ok(PipelineOutcome {
            dsyb: None,
            dseq,
            report,
        })
    }

    fn mine_symbolic(
        &self,
        dsyb: &SymbolicDatabase,
    ) -> Result<(SequenceDatabase, EngineReport), PipelineError> {
        let dseq = dsyb
            .to_sequence_database(self.mapping_factor)
            .map_err(PipelineError::Transform)?;
        let input = MiningInput::new(dsyb, &dseq, self.mapping_factor);
        let mut config = self.config.clone();
        if let Some(threads) = self.threads {
            config.threads = threads;
        }
        let report = self
            .engine
            .mine_with(&input, &config)
            .map_err(PipelineError::Mining)?;
        Ok((dseq, report))
    }
}

/// Everything the legacy single-engine pipeline produced.
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// The symbolic database `D_SYB` built from the raw series.
    pub dsyb: SymbolicDatabase,
    /// The temporal sequence database `D_SEQ`.
    pub dseq: SequenceDatabase,
    /// The frequent seasonal events and patterns found by E-STPM.
    pub report: MiningReport,
}

/// Runs the full FreqSTPfTS pipeline on raw time series with the exact miner.
///
/// # Errors
/// Propagates validation errors from either phase.
#[deprecated(
    since = "0.2.0",
    note = "use `Pipeline::builder().symbolizer(...).mapping_factor(...).thresholds(...).run(...)` \
            — it supports all engines and returns the unified EngineReport"
)]
pub fn mine_seasonal_patterns<S: Symbolizer>(
    series: &[TimeSeries],
    symbolizer: &S,
    mapping_factor: u64,
    config: &StpmConfig,
) -> Result<MiningOutcome, PipelineError> {
    let dsyb =
        SymbolicDatabase::from_series(series, symbolizer).map_err(PipelineError::Transform)?;
    let dseq = dsyb
        .to_sequence_database(mapping_factor)
        .map_err(PipelineError::Transform)?;
    let input = MiningInput::new(&dsyb, &dseq, mapping_factor);
    let report = StpmMiner
        .mine_with(&input, config)
        .map_err(PipelineError::Mining)?
        .into_report();
    Ok(MiningOutcome { dsyb, dseq, report })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::PipelineError;

    fn sample_series() -> Vec<TimeSeries> {
        vec![
            TimeSeries::new("A", vec![1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0]),
            TimeSeries::new("B", vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0]),
        ]
    }

    fn sample_config() -> StpmConfig {
        StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(2),
            dist_interval: (1, 10),
            min_season: 1,
            ..StpmConfig::default()
        }
    }

    #[test]
    fn pipeline_mines_the_quickstart_example() {
        let outcome = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(sample_config())
            .run(&sample_series())
            .unwrap();
        assert_eq!(outcome.dseq.num_granules(), 3);
        assert!(outcome.report.total_patterns() > 0);
        assert_eq!(outcome.report.engine(), "E-STPM");
    }

    #[test]
    fn every_builtin_engine_is_reachable_through_the_builder() {
        for engine in [
            Engine::Exact,
            Engine::Approximate { mu: None },
            Engine::Approximate { mu: Some(0.0) },
            Engine::ApsGrowth,
        ] {
            let pipeline = Pipeline::builder()
                .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
                .mapping_factor(3)
                .engine(engine)
                .thresholds(sample_config());
            let outcome = pipeline.run(&sample_series()).unwrap();
            assert_eq!(outcome.report.engine(), pipeline.engine_name());
            assert!(outcome.report.stats().num_granules <= 3);
        }
    }

    #[test]
    fn exact_and_zero_mu_approximate_agree() {
        let base = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(sample_config());
        let exact = base.run(&sample_series()).unwrap().report;
        let approx = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .engine(Engine::Approximate { mu: Some(0.0) })
            .thresholds(sample_config())
            .run(&sample_series())
            .unwrap()
            .report;
        assert!((accuracy(&exact, &approx) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn threads_knob_changes_nothing_but_wall_clock() {
        // The builder knob is order-insensitive w.r.t. thresholds() and flows
        // through every engine; parallel output equals sequential output.
        for engine in [Engine::Exact, Engine::Approximate { mu: None }] {
            let sequential = Pipeline::builder()
                .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
                .mapping_factor(3)
                .engine(engine)
                .thresholds(sample_config())
                .run(&sample_series())
                .unwrap();
            let parallel = Pipeline::builder()
                .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
                .mapping_factor(3)
                .engine(engine)
                .threads(3) // before thresholds(): must still win
                .thresholds(sample_config())
                .run(&sample_series())
                .unwrap();
            assert_eq!(
                parallel.report.pattern_set(),
                sequential.report.pattern_set()
            );
            assert_eq!(
                parallel.report.patterns(),
                sequential.report.patterns(),
                "parallel pattern order diverged for {engine:?}"
            );
        }
    }

    #[test]
    fn run_symbolic_accepts_prebuilt_databases() {
        let dsyb = SymbolicDatabase::from_series(
            &sample_series(),
            &ThresholdSymbolizer::binary(0.5, "0", "1"),
        )
        .unwrap();
        let outcome = Pipeline::builder()
            .mapping_factor(3)
            .thresholds(sample_config())
            .run_symbolic(&dsyb)
            .unwrap();
        assert!(outcome.report.total_patterns() > 0);
    }

    #[test]
    fn run_without_symbolizer_is_rejected() {
        let err = Pipeline::builder()
            .thresholds(sample_config())
            .run(&sample_series())
            .unwrap_err();
        assert_eq!(err, PipelineError::MissingSymbolizer);
        assert!(err.to_string().contains("symbolizer"));
    }

    #[test]
    fn pipeline_surfaces_transform_errors() {
        let err = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(StpmConfig::default())
            .run(&[TimeSeries::new("empty", vec![])])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Transform(_)));
        assert!(err.to_string().contains("transformation"));
    }

    #[test]
    fn pipeline_surfaces_mining_errors() {
        let config = StpmConfig {
            min_season: 0,
            ..StpmConfig::default()
        };
        let err = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
            .mapping_factor(3)
            .thresholds(config)
            .run(&[TimeSeries::new("A", vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0])])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Mining(_)));
        assert!(err.to_string().contains("mining"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrapper_still_mines() {
        let outcome = super::mine_seasonal_patterns(
            &sample_series(),
            &ThresholdSymbolizer::binary(0.5, "0", "1"),
            3,
            &sample_config(),
        )
        .unwrap();
        assert_eq!(outcome.dseq.num_granules(), 3);
        assert!(outcome.report.total_patterns() > 0);
    }

    #[test]
    fn engine_variants_instantiate_the_three_contenders() {
        let names: Vec<&str> = [
            Engine::Approximate { mu: None },
            Engine::Exact,
            Engine::ApsGrowth,
        ]
        .iter()
        .map(|e| e.instantiate().name())
        .collect();
        assert_eq!(names, vec!["A-STPM", "E-STPM", "APS-growth"]);
    }
}
