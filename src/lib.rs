//! # FreqSTPfTS — Frequent Seasonal Temporal Pattern Mining from Time Series
//!
//! A Rust implementation of the FreqSTPfTS system from
//! *"Mining Seasonal Temporal Patterns in Time Series"* (ICDE 2023):
//! the exact miner **E-STPM**, the mutual-information-based approximate miner
//! **A-STPM**, the **APS-growth** baseline, the data-transformation
//! substrate, and the synthetic workload generators used by the evaluation
//! harness.
//!
//! This facade crate re-exports the public API of the workspace crates and
//! adds a small pipeline helper for the common "raw series in, seasonal
//! patterns out" case.
//!
//! ```
//! use freqstpfts::prelude::*;
//!
//! // 1. Raw time series (two appliances sampled every 5 minutes).
//! let series = vec![
//!     TimeSeries::new("Cooker", vec![1.8, 1.2, 0.0, 1.1, 0.0, 0.0, 1.3, 1.4, 0.0, 0.0, 0.0, 0.0]),
//!     TimeSeries::new("Dishes", vec![2.0, 0.0, 0.0, 1.4, 0.0, 0.0, 1.2, 1.5, 0.0, 1.2, 1.1, 0.0]),
//! ];
//!
//! // 2. Configure thresholds and mine, mapping 3 raw samples per granule.
//! let config = StpmConfig {
//!     max_period: Threshold::Absolute(2),
//!     min_density: Threshold::Absolute(2),
//!     dist_interval: (1, 10),
//!     min_season: 1,
//!     ..StpmConfig::default()
//! };
//! let outcome = mine_seasonal_patterns(
//!     &series,
//!     &ThresholdSymbolizer::binary(0.5, "Off", "On"),
//!     3,
//!     &config,
//! ).unwrap();
//! assert!(outcome.report.total_patterns() > 0);
//! ```

#![warn(missing_docs)]

pub use stpm_approx as approx;
pub use stpm_baseline as baseline;
pub use stpm_core as core;
pub use stpm_datagen as datagen;
pub use stpm_timeseries as timeseries;

use stpm_core::{MiningReport, StpmConfig, StpmMiner};
use stpm_timeseries::{SequenceDatabase, SymbolicDatabase, Symbolizer, TimeSeries};

/// The most commonly used items of the whole workspace, importable with a
/// single `use freqstpfts::prelude::*`.
pub mod prelude {
    pub use crate::{mine_seasonal_patterns, MiningOutcome};
    pub use stpm_approx::{accuracy, AStpmConfig, AStpmMiner, AStpmReport};
    pub use stpm_baseline::{ApsGrowth, ApsGrowthReport};
    pub use stpm_core::{
        MinedPattern, MiningReport, PruningMode, RelationKind, StpmConfig, StpmMiner,
        TemporalPattern, Threshold,
    };
    pub use stpm_datagen::{generate, DatasetProfile, DatasetSpec};
    pub use stpm_timeseries::{
        Alphabet, EqualWidthSymbolizer, EventLabel, QuantileSymbolizer, SaxSymbolizer,
        SequenceDatabase, SymbolicDatabase, SymbolicSeries, Symbolizer, ThresholdSymbolizer,
        TimeSeries,
    };
}

/// Everything the end-to-end pipeline produces: the intermediate databases
/// (useful for inspection and for running the other miners on the same data)
/// plus the exact miner's report.
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// The symbolic database `D_SYB` built from the raw series.
    pub dsyb: SymbolicDatabase,
    /// The temporal sequence database `D_SEQ`.
    pub dseq: SequenceDatabase,
    /// The frequent seasonal events and patterns found by E-STPM.
    pub report: MiningReport,
}

/// Errors of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The data-transformation phase failed.
    Transform(stpm_timeseries::Error),
    /// The mining phase failed.
    Mining(stpm_core::Error),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Transform(e) => write!(f, "data transformation failed: {e}"),
            PipelineError::Mining(e) => write!(f, "mining failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Runs the full FreqSTPfTS pipeline on raw time series: symbolization with
/// `symbolizer`, sequence mapping with factor `mapping_factor`, and exact
/// seasonal temporal pattern mining with `config`.
///
/// # Errors
/// Propagates validation errors from either phase.
pub fn mine_seasonal_patterns<S: Symbolizer>(
    series: &[TimeSeries],
    symbolizer: &S,
    mapping_factor: u64,
    config: &StpmConfig,
) -> Result<MiningOutcome, PipelineError> {
    let dsyb =
        SymbolicDatabase::from_series(series, symbolizer).map_err(PipelineError::Transform)?;
    let dseq = dsyb
        .to_sequence_database(mapping_factor)
        .map_err(PipelineError::Transform)?;
    let report = StpmMiner::new(&dseq, config)
        .map_err(PipelineError::Mining)?
        .mine();
    Ok(MiningOutcome { dsyb, dseq, report })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::PipelineError;

    #[test]
    fn pipeline_mines_the_quickstart_example() {
        let series = vec![
            TimeSeries::new("A", vec![1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0]),
            TimeSeries::new("B", vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0]),
        ];
        let config = StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(2),
            dist_interval: (1, 10),
            min_season: 1,
            ..StpmConfig::default()
        };
        let outcome = mine_seasonal_patterns(
            &series,
            &ThresholdSymbolizer::binary(0.5, "0", "1"),
            3,
            &config,
        )
        .unwrap();
        assert_eq!(outcome.dseq.num_granules(), 3);
        assert!(outcome.report.total_patterns() > 0);
    }

    #[test]
    fn pipeline_surfaces_transform_errors() {
        let config = StpmConfig::default();
        let err = mine_seasonal_patterns(
            &[TimeSeries::new("empty", vec![])],
            &ThresholdSymbolizer::binary(0.5, "0", "1"),
            3,
            &config,
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Transform(_)));
        assert!(err.to_string().contains("transformation"));
    }

    #[test]
    fn pipeline_surfaces_mining_errors() {
        let series = vec![TimeSeries::new("A", vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0])];
        let config = StpmConfig {
            min_season: 0,
            ..StpmConfig::default()
        };
        let err = mine_seasonal_patterns(
            &series,
            &ThresholdSymbolizer::binary(0.5, "0", "1"),
            3,
            &config,
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Mining(_)));
        assert!(err.to_string().contains("mining"));
    }
}
