#!/usr/bin/env python3
"""Compare a fresh `streaming --quick` run against the committed baseline.

Usage:
    check_streaming_regression.py BASELINE.json FRESH.json [--max-slowdown 1.25]

Checks, in order of severity:

1. **Exactness**: every fresh point must report
   `identical_checkpoints == checkpoints`. The experiment itself panics on a
   batch/streaming divergence, so a fresh file that exists at all usually
   passes — this guards against the assertion being edited away.
2. **Pattern counts** must match the baseline at every batch size (keyed by
   `batch_granules`). Mining is deterministic; any difference is a
   correctness regression of either engine, not noise.
3. **Dead counters**: every point needs `checkpoints > 0` and `granules > 0`,
   and at least one point must report `patterns_final > 0` — zeros everywhere
   mean the streaming engine came unwired.
4. **Amortized-append speedup**: the largest batch size must keep its
   amortized append at least 2x cheaper than the amortized full re-mine —
   the headline guarantee of the incremental engine. Both sides of the ratio
   move together under machine noise, so this gate is stable where absolute
   runtimes are not.
5. **Runtime**: the fresh total append time must not exceed
   `max(baseline_total * max_slowdown, baseline_total + ABS_SLACK_SECS)`.
   As with the scaling gate, quick-grid totals sit in the milliseconds where
   scheduler jitter dominates; the noise floor means only multi-x blowups
   trip this check, with checks 1-4 carrying the strict signal.

Exit status is non-zero on the first failed check.
"""

import argparse
import json
import sys

# Noise floor added on top of the relative budget: quick-grid appends run in
# single-digit milliseconds, where scheduler jitter alone exceeds 25%.
ABS_SLACK_SECS = 0.02

# The acceptance bar for the incremental engine on the largest quick config.
MIN_SPEEDUP = 2.0


def load_points(path):
    """Returns {batch_granules: point_dict} plus the total append time."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    points = {}
    append_total = 0.0
    for point in doc["points"]:
        points[point["batch_granules"]] = point
        append_total += point["append_total_secs"]
    return points, append_total


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--max-slowdown", type=float, default=1.25)
    args = parser.parse_args()

    baseline, baseline_total = load_points(args.baseline)
    fresh, fresh_total = load_points(args.fresh)

    if set(baseline) != set(fresh):
        missing = sorted(set(baseline) - set(fresh))
        extra = sorted(set(fresh) - set(baseline))
        sys.exit(f"FAIL: batch-size grids differ (missing={missing}, extra={extra})")

    for batch, point in sorted(fresh.items()):
        if point["identical_checkpoints"] != point["checkpoints"]:
            sys.exit(
                f"FAIL: batch size {batch}: only {point['identical_checkpoints']} of "
                f"{point['checkpoints']} checkpoints matched the batch re-mine"
            )
        if point["checkpoints"] <= 0 or point["granules"] <= 0:
            sys.exit(f"FAIL: batch size {batch}: dead checkpoint/granule counters")
        base_point = baseline[batch]
        if point["patterns_final"] != base_point["patterns_final"]:
            sys.exit(
                f"FAIL: pattern count diverged at batch size {batch}: "
                f"baseline {base_point['patterns_final']} vs fresh {point['patterns_final']}"
            )

    if not any(p["patterns_final"] > 0 for p in fresh.values()):
        sys.exit("FAIL: patterns_final is 0 everywhere — the streaming engine is unwired")

    largest = fresh[max(fresh)]
    if largest["speedup"] < MIN_SPEEDUP:
        sys.exit(
            f"FAIL: amortized append speedup {largest['speedup']:.2f}x at batch size "
            f"{max(fresh)} fell below the {MIN_SPEEDUP:.1f}x bar"
        )

    budget = max(baseline_total * args.max_slowdown, baseline_total + ABS_SLACK_SECS)
    verdict = "ok" if fresh_total <= budget else "FAIL"
    print(
        f"append total: baseline {baseline_total:.4f}s, fresh {fresh_total:.4f}s, "
        f"budget {budget:.4f}s -> {verdict}"
    )
    if fresh_total > budget:
        sys.exit(
            f"FAIL: quick streaming append regressed beyond "
            f"{args.max_slowdown:.2f}x (+{ABS_SLACK_SECS}s slack)"
        )
    print(
        f"ok: {len(fresh)} batch sizes, all checkpoints exact, patterns identical, "
        f"largest-config speedup {largest['speedup']:.2f}x"
    )


if __name__ == "__main__":
    main()
