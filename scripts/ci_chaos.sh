#!/usr/bin/env bash
# Chaos gate: the deterministic fault-injection sweep. Crashes the
# persistence stack at every registered failpoint and requires recovery to
# be byte-identical with zero acknowledged-granule loss, plus the
# budget-spill identity and torn-tail scenarios.
#
# CI's analysis job executes this exact script, so a local
# `scripts/ci_chaos.sh` reproduces the chaos gate bit for bit. Everything
# runs against the in-memory FaultyFs — no real files, fully deterministic.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== chaos recovery sweep (fault injection at every failpoint) =="
cargo test --release -q --test chaos_recovery

echo "chaos gate: recovery is byte-identical at every failpoint"
