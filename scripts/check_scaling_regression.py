#!/usr/bin/env python3
"""Compare a fresh `scaling --quick` run against the committed quick baseline.

Usage:
    check_scaling_regression.py BASELINE.json FRESH.json [--max-slowdown 1.25]

Checks, in order of severity:

1. **Pattern counts** must be identical at every sweep point (keyed by
   (axis, series, sequences)). The miner's output is deterministic, so any
   difference is a correctness regression, not noise.
2. **Reuse counters**: at least one point must report
   `classifier_calls_saved > 0` — the quick grid mines 3-event patterns, so
   a zero everywhere means the level-2 reuse machinery came unwired.
3. **Runtime**: the fresh total runtime must not exceed
   `max(baseline_total * max_slowdown, baseline_total + ABS_SLACK_SECS)`.
   Be honest about what this catches: the quick grid totals ~10ms, where
   scheduler jitter and cross-machine differences alone exceed 25%, so the
   noise floor dominates and only multi-x algorithmic blowups trip the
   runtime gate. Pattern identity (check 1) is the strict signal; the
   runtime gate is a backstop against order-of-magnitude regressions.

Exit status is non-zero on the first failed check.
"""

import argparse
import json
import sys

# Noise floor added on top of the relative budget: quick-grid points run in
# single-digit milliseconds, where scheduler jitter alone exceeds 25%.
ABS_SLACK_SECS = 0.02


def load_points(path):
    """Returns {(axis, series, sequences): point_dict} plus the file total."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    points = {}
    total_runtime = 0.0
    for sweep in doc["sweeps"]:
        for point in sweep["points"]:
            key = (sweep["axis"], point["series"], point["sequences"])
            points[key] = point
            total_runtime += point["runtime_secs"]
    return points, total_runtime


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--max-slowdown", type=float, default=1.25)
    args = parser.parse_args()

    baseline, baseline_total = load_points(args.baseline)
    fresh, fresh_total = load_points(args.fresh)

    if set(baseline) != set(fresh):
        missing = sorted(set(baseline) - set(fresh))
        extra = sorted(set(fresh) - set(baseline))
        sys.exit(f"FAIL: sweep grids differ (missing={missing}, extra={extra})")

    for key, base_point in sorted(baseline.items()):
        fresh_point = fresh[key]
        if base_point["patterns"] != fresh_point["patterns"]:
            sys.exit(
                f"FAIL: pattern count diverged at {key}: "
                f"baseline {base_point['patterns']} vs fresh {fresh_point['patterns']}"
            )

    if not any(p.get("classifier_calls_saved", 0) > 0 for p in fresh.values()):
        sys.exit("FAIL: classifier_calls_saved is 0 everywhere — level-2 reuse is unwired")

    budget = max(baseline_total * args.max_slowdown, baseline_total + ABS_SLACK_SECS)
    verdict = "ok" if fresh_total <= budget else "FAIL"
    print(
        f"runtime total: baseline {baseline_total:.4f}s, fresh {fresh_total:.4f}s, "
        f"budget {budget:.4f}s -> {verdict}"
    )
    if fresh_total > budget:
        sys.exit(
            f"FAIL: quick scaling runtime regressed beyond "
            f"{args.max_slowdown:.2f}x (+{ABS_SLACK_SECS}s slack)"
        )
    print(f"ok: {len(fresh)} points, patterns identical, counters live")


if __name__ == "__main__":
    main()
