#!/usr/bin/env python3
"""Assert that two `kernels --quick` runs produced identical outputs.

Usage:
    check_kernels_parity.py LEG_A.json LEG_B.json

The CI kernel-parity matrix runs the kernel experiment once per dispatch
leg (detected-best, `STPM_FORCE_SCALAR=1`, and `+avx2` codegen where the
runner supports it) and feeds the JSONs through this script pairwise. The
legs may differ in timings and in the chosen dispatch tier — that is the
point — but every output-derived field must be identical:

* the kernel set and per-kernel element counts (same workloads ran),
* per-kernel match counts and output checksums (same results computed),
* the end-to-end mine's pattern count (same patterns mined).

Exit status is non-zero on the first difference.
"""

import json
import sys


def load(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    return doc, {point["kernel"]: point for point in doc["kernels"]}


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} LEG_A.json LEG_B.json")
    path_a, path_b = sys.argv[1], sys.argv[2]
    doc_a, points_a = load(path_a)
    doc_b, points_b = load(path_b)

    print(
        f"leg A ({path_a}): dispatch {doc_a['chosen']}"
        f"{' (forced scalar)' if doc_a.get('force_scalar') else ''}"
    )
    print(
        f"leg B ({path_b}): dispatch {doc_b['chosen']}"
        f"{' (forced scalar)' if doc_b.get('force_scalar') else ''}"
    )

    if set(points_a) != set(points_b):
        sys.exit(
            f"FAIL: kernel sets differ ({sorted(points_a)} vs {sorted(points_b)})"
        )

    for name in sorted(points_a):
        for field in ("elements", "matches", "checksum"):
            if points_a[name][field] != points_b[name][field]:
                sys.exit(
                    f"FAIL: {name}.{field} differs across legs: "
                    f"{points_a[name][field]} vs {points_b[name][field]} — "
                    "the dispatch tiers do not compute identical outputs"
                )
        print(
            f"{name}: matches={points_a[name]['matches']} "
            f"checksum={points_a[name]['checksum']} — identical"
        )

    if doc_a["patterns"] != doc_b["patterns"]:
        sys.exit(
            f"FAIL: end-to-end pattern counts differ across legs: "
            f"{doc_a['patterns']} vs {doc_b['patterns']}"
        )
    print(f"patterns: {doc_a['patterns']} — identical")
    print("parity: legs agree on every output")


if __name__ == "__main__":
    main()
