#!/usr/bin/env bash
# Bench smoke suite: quick benchmark runs, JSON sanity checks, and the
# regression gates against the committed quick baselines.
#
# CI's bench-smoke job executes this exact script, so a local
# `scripts/ci_bench_smoke.sh` reproduces the CI gate bit for bit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== thread-scaling smoke =="
cargo run --release -p stpm-bench --bin threads_speedup -- --quick
python3 -m json.tool BENCH_threads.json > /dev/null
entries=$(grep -o '"threads":' BENCH_threads.json | wc -l)
echo "thread-count entries: $entries"
test "$entries" -ge 2

echo "== single-threaded scaling smoke =="
cargo run --release -p stpm-bench --bin scaling -- --quick
python3 -m json.tool BENCH_scaling_quick.json > /dev/null
axes=$(grep -o '"axis":' BENCH_scaling_quick.json | wc -l)
echo "scaling axes: $axes"
test "$axes" -ge 2

echo "== streaming smoke =="
cargo run --release -p stpm-bench --bin streaming -- --quick
python3 -m json.tool BENCH_streaming_quick.json > /dev/null
points=$(grep -o '"batch_granules":' BENCH_streaming_quick.json | wc -l)
echo "streaming batch-size points: $points"
test "$points" -ge 2

echo "== recovery smoke =="
cargo run --release -p stpm-bench --bin recovery -- --quick
python3 -m json.tool BENCH_recovery_quick.json > /dev/null
points=$(grep -o '"tail_granules":' BENCH_recovery_quick.json | wc -l)
echo "recovery crash-position points: $points"
test "$points" -ge 2

echo "== kernel-throughput smoke =="
cargo run --release -p stpm-bench --bin kernels -- --quick
python3 -m json.tool BENCH_kernels_quick.json > /dev/null
tiers=$(grep -o '"tier":' BENCH_kernels_quick.json | wc -l)
echo "kernel (kernel, tier) entries: $tiers"
test "$tiers" -ge 5

echo "== checked-in full-run baselines stay parseable =="
python3 -m json.tool BENCH_scaling.json > /dev/null
python3 -m json.tool BENCH_streaming.json > /dev/null
python3 -m json.tool BENCH_recovery.json > /dev/null
python3 -m json.tool BENCH_kernels.json > /dev/null

echo "== scaling regression gate =="
python3 scripts/check_scaling_regression.py \
  BENCH_scaling_quick_baseline.json BENCH_scaling_quick.json \
  --max-slowdown 1.25

echo "== streaming regression gate =="
python3 scripts/check_streaming_regression.py \
  BENCH_streaming_quick_baseline.json BENCH_streaming_quick.json \
  --max-slowdown 1.25

echo "== recovery regression gate =="
python3 scripts/check_recovery_regression.py \
  BENCH_recovery_quick_baseline.json BENCH_recovery_quick.json \
  --max-slowdown 1.25

echo "== kernels regression gate =="
python3 scripts/check_kernels_regression.py \
  BENCH_kernels_quick_baseline.json BENCH_kernels_quick.json \
  --max-slowdown 1.25

echo "bench smoke: all gates passed"
