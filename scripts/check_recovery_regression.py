#!/usr/bin/env python3
"""Compare a fresh `recovery --quick` run against the committed baseline.

Usage:
    check_recovery_regression.py BASELINE.json FRESH.json [--max-slowdown 1.25]

Checks, in order of severity:

1. **Exactness**: every fresh point must report `identical == true` — the
   recovered pattern set matched both the streaming replay and the batch
   re-mine. The experiment itself panics on a divergence, so a fresh file
   that exists at all usually passes — this guards against the assertion
   being edited away.
2. **Pattern counts** must match the baseline at every crash position
   (keyed by `tail_granules`). Mining and recovery are deterministic; any
   difference is a correctness regression, not noise.
3. **Dead counters**: every point needs `granules > 0` and
   `snapshot_bytes > 0`, and at least one point must report `patterns > 0`
   — zeros everywhere mean the snapshot subsystem came unwired.
4. **Restore speedup**: the pure-restore point (`tail_granules == 0`) must
   keep recovery at least 3x cheaper than the full streaming re-mine — the
   headline guarantee of the persistence layer, held to a reduced bar on the
   noisy quick grid (the full run in `BENCH_recovery.json` records the >=5x
   acceptance figure). Both sides of the ratio move together under machine
   noise, so this gate is stable where absolute runtimes are not.
5. **Runtime**: the fresh total recovery time must not exceed
   `max(baseline_total * max_slowdown, baseline_total + ABS_SLACK_SECS)`.
   Quick-grid recoveries run in single-digit milliseconds where scheduler
   jitter dominates; the noise floor means only multi-x blowups trip this
   check, with checks 1-4 carrying the strict signal.

Exit status is non-zero on the first failed check.
"""

import argparse
import json
import sys

# Noise floor added on top of the relative budget: quick-grid recoveries run
# in single-digit milliseconds, where scheduler jitter alone exceeds 25%.
ABS_SLACK_SECS = 0.02

# The acceptance bar for pure restore on the quick grid (the full-run bar of
# 5x lives in BENCH_recovery.json, recorded at the largest streaming config).
MIN_RESTORE_SPEEDUP = 3.0


def load_points(path):
    """Returns {tail_granules: point_dict} plus the total recovery time."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    points = {}
    recovery_total = 0.0
    for point in doc["points"]:
        points[point["tail_granules"]] = point
        recovery_total += point["recovery_secs"]
    return points, recovery_total


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--max-slowdown", type=float, default=1.25)
    args = parser.parse_args()

    baseline, baseline_total = load_points(args.baseline)
    fresh, fresh_total = load_points(args.fresh)

    if set(baseline) != set(fresh):
        missing = sorted(set(baseline) - set(fresh))
        extra = sorted(set(fresh) - set(baseline))
        sys.exit(f"FAIL: tail-size grids differ (missing={missing}, extra={extra})")

    for tail, point in sorted(fresh.items()):
        if not point["identical"]:
            sys.exit(
                f"FAIL: tail {tail}: the recovered pattern set diverged from the re-mine"
            )
        if point["granules"] <= 0 or point["snapshot_bytes"] <= 0:
            sys.exit(f"FAIL: tail {tail}: dead granule/snapshot counters")
        base_point = baseline[tail]
        if point["patterns"] != base_point["patterns"]:
            sys.exit(
                f"FAIL: pattern count diverged at tail {tail}: "
                f"baseline {base_point['patterns']} vs fresh {point['patterns']}"
            )

    if not any(p["patterns"] > 0 for p in fresh.values()):
        sys.exit("FAIL: patterns is 0 everywhere — the snapshot subsystem is unwired")

    if 0 not in fresh:
        sys.exit("FAIL: the sweep lost its pure-restore point (tail_granules == 0)")
    restore = fresh[0]
    if restore["speedup"] < MIN_RESTORE_SPEEDUP:
        sys.exit(
            f"FAIL: pure-restore speedup {restore['speedup']:.2f}x fell below the "
            f"{MIN_RESTORE_SPEEDUP:.1f}x bar"
        )

    budget = max(baseline_total * args.max_slowdown, baseline_total + ABS_SLACK_SECS)
    verdict = "ok" if fresh_total <= budget else "FAIL"
    print(
        f"recovery total: baseline {baseline_total:.4f}s, fresh {fresh_total:.4f}s, "
        f"budget {budget:.4f}s -> {verdict}"
    )
    if fresh_total > budget:
        sys.exit(
            f"FAIL: quick recovery regressed beyond "
            f"{args.max_slowdown:.2f}x (+{ABS_SLACK_SECS}s slack)"
        )
    print(
        f"ok: {len(fresh)} crash positions, all recoveries exact, patterns identical, "
        f"pure-restore speedup {restore['speedup']:.2f}x"
    )


if __name__ == "__main__":
    main()
