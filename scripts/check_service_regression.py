#!/usr/bin/env python3
"""Compare a fresh `service --quick` run against the committed baseline.

Usage:
    check_service_regression.py BASELINE.json FRESH.json [--max-slowdown 1.25]

Checks, in order of severity:

1. **Exactness**: every fresh point must report `identical == true` — the
   sampled tenant's pattern set, mined through the full service path
   (admission, queueing, eviction/rehydration round trips, transient-fault
   retries), matched a direct single-tenant pipeline. The experiment
   panics on divergence, so this guards against the assertion being
   edited away.
2. **Zero loss**: `acked_appends == total_appends` at every fleet size —
   the closed-loop driver retries until every batch is acknowledged, and
   the service must get there.
3. **Live robustness counters**: every point needs `evictions > 0`,
   `rehydrations > 0` and `io_retries > 0` — the run is only a robustness
   measurement while the budget enforcer and the retry path are actually
   exercised; zeros mean the adversarial half of the bench came unwired.
4. **Budget**: `under_budget == true` and `resident_bytes <=
   budget_bytes` — residency must end inside the configured budget.
5. **p99 latency**: the fresh p99 must not exceed
   `max(baseline_p99 * max_slowdown, baseline_p99 + ABS_SLACK_SECS)` at
   any fleet size. Quick-grid appends complete in fractions of a
   millisecond where scheduler jitter dominates; the absolute slack means
   only multi-x blowups trip this check, with checks 1-4 carrying the
   strict signal.

Exit status is non-zero on the first failed check.
"""

import argparse
import json
import sys

# Noise floor added on top of the relative budget: quick-grid p99s sit in
# the single-digit-millisecond range, where scheduler jitter alone exceeds
# 25%.
ABS_SLACK_SECS = 0.02


def load_points(path):
    """Returns {tenants: point_dict}."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    return {point["tenants"]: point for point in doc["points"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--max-slowdown", type=float, default=1.25)
    args = parser.parse_args()

    baseline = load_points(args.baseline)
    fresh = load_points(args.fresh)

    if set(baseline) != set(fresh):
        missing = sorted(set(baseline) - set(fresh))
        extra = sorted(set(fresh) - set(baseline))
        sys.exit(f"FAIL: fleet-size grids differ (missing={missing}, extra={extra})")

    for tenants, point in sorted(fresh.items()):
        if not point["identical"]:
            sys.exit(
                f"FAIL: {tenants} tenants: service-path mining diverged from the "
                "direct pipeline"
            )
        if point["acked_appends"] != point["total_appends"]:
            sys.exit(
                f"FAIL: {tenants} tenants: {point['acked_appends']} acked of "
                f"{point['total_appends']} appends — the service lost work"
            )
        for counter in ("evictions", "rehydrations", "io_retries"):
            if point[counter] <= 0:
                sys.exit(
                    f"FAIL: {tenants} tenants: {counter} == 0 — the adversarial "
                    "half of the bench is not being exercised"
                )
        if not point["under_budget"] or point["resident_bytes"] > point["budget_bytes"]:
            sys.exit(
                f"FAIL: {tenants} tenants: ended over budget "
                f"({point['resident_bytes']} resident vs {point['budget_bytes']})"
            )

        base_p99 = baseline[tenants]["p99_secs"]
        budget = max(base_p99 * args.max_slowdown, base_p99 + ABS_SLACK_SECS)
        if point["p99_secs"] > budget:
            sys.exit(
                f"FAIL: {tenants} tenants: p99 {point['p99_secs']:.6f}s exceeds "
                f"budget {budget:.6f}s (baseline {base_p99:.6f}s, "
                f"max-slowdown {args.max_slowdown})"
            )
        print(
            f"OK: {tenants:>5} tenants: {point['acked_appends']} acked, "
            f"{point['evictions']} evictions, {point['rehydrations']} rehydrations, "
            f"{point['io_retries']} retries, p99 {point['p99_secs'] * 1e3:.3f} ms "
            f"(budget {budget * 1e3:.3f} ms)"
        )

    print("service regression gate: identical mining, zero loss, live counters")


if __name__ == "__main__":
    main()
