#!/usr/bin/env bash
# Service-tier gate: functional + chaos tests for the multi-tenant daemon,
# a quick run of the service bench (which itself asserts pattern identity,
# zero acked-append loss, under-budget residency, and live
# eviction/rehydration/retry counters), and the regression gate against
# the committed quick baseline.
#
# CI's service job executes this exact script, so a local
# `scripts/ci_service_smoke.sh` reproduces the gate bit for bit. The bench
# and chaos runs use the in-memory FaultyFs — no real files.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== service functional tests (admission, deadlines, quarantine, drain) =="
cargo test --release -q -p stpm-service --test service

echo "== service chaos sweep (hard kills + faults at every failpoint) =="
cargo test --release -q -p stpm-service --test service_chaos

echo "== service bench smoke =="
cargo run --release -p stpm-bench --bin service -- --quick
python3 -m json.tool BENCH_service_quick.json > /dev/null
points=$(grep -o '"tenants":' BENCH_service_quick.json | wc -l)
echo "fleet-size points: $points"
test "$points" -ge 2

echo "== checked-in full-run baseline stays parseable =="
python3 -m json.tool BENCH_service.json > /dev/null

echo "== service regression gate =="
python3 scripts/check_service_regression.py \
  BENCH_service_quick_baseline.json BENCH_service_quick.json \
  --max-slowdown 1.25

echo "service gate: exact mining, zero loss, bounded memory under faults"
