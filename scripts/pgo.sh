#!/usr/bin/env bash
# Opt-in profile-guided optimization build of the experiment binaries.
#
# Not part of any CI gate: PGO roughly doubles build time and needs an
# llvm-profdata whose LLVM major version matches rustc's (the rustup
# `llvm-tools` component, or a matching system LLVM), so it is a tool
# for performance work, not a default. The flow:
#
#   1. build the bench binaries instrumented (-Cprofile-generate),
#   2. drive them through the quick scaling + streaming + kernels
#      workloads (the same inner loops the full experiments exercise),
#   3. merge the raw profiles with llvm-profdata,
#   4. rebuild optimized against the merged profile (-Cprofile-use).
#
# The optimized binaries land in target/release as usual; run the full
# experiments afterwards to measure the effect. Set STPM_PGO_DIR to move
# the profile directory (default: target/pgo-profiles).
set -euo pipefail
cd "$(dirname "$0")/.."

PROFDIR="${STPM_PGO_DIR:-target/pgo-profiles}"
rm -rf "$PROFDIR"
mkdir -p "$PROFDIR"
ABS_PROFDIR="$(cd "$PROFDIR" && pwd)"

# The .profraw format is tied to the LLVM major version rustc was built
# with, so prefer the sysroot's llvm-tools copy and reject a PATH copy
# whose major version differs (a Debian LLVM 14 llvm-profdata cannot
# read profiles emitted by an LLVM 22 rustc — fail here, not after the
# instrumented build and profiling runs).
echo "== locating llvm-profdata =="
RUSTC_LLVM_MAJOR="$(rustc -vV | sed -n 's/^LLVM version: \([0-9]*\).*/\1/p')"
sysroot="$(rustc --print sysroot)"
PROFDATA="$(find "$sysroot" -name llvm-profdata -type f 2>/dev/null | head -n 1 || true)"
if [ -z "$PROFDATA" ]; then
  PROFDATA="$(command -v llvm-profdata || true)"
fi
if [ -z "$PROFDATA" ]; then
  echo "error: llvm-profdata not found in the rustc sysroot or on PATH." >&2
  echo "       install it with: rustup component add llvm-tools" >&2
  exit 1
fi
TOOL_LLVM_MAJOR="$("$PROFDATA" merge --version 2>/dev/null \
  | sed -n 's/.*LLVM version \([0-9]*\).*/\1/p' | head -n 1)"
if [ -n "$RUSTC_LLVM_MAJOR" ] && [ "$TOOL_LLVM_MAJOR" != "$RUSTC_LLVM_MAJOR" ]; then
  echo "error: $PROFDATA is LLVM ${TOOL_LLVM_MAJOR:-unknown} but rustc emits" >&2
  echo "       LLVM $RUSTC_LLVM_MAJOR profiles; the merge would reject every" >&2
  echo "       .profraw. Install the matching tool: rustup component add llvm-tools" >&2
  exit 1
fi
echo "using $PROFDATA (LLVM $TOOL_LLVM_MAJOR, matching rustc)"

echo "== step 1/4: instrumented build =="
RUSTFLAGS="-Cprofile-generate=$ABS_PROFDIR" \
  cargo build --release -p stpm-bench \
  --bin scaling --bin streaming --bin kernels

echo "== step 2/4: profiling workload (quick scaling + streaming + kernels) =="
./target/release/scaling --quick
./target/release/streaming --quick
./target/release/kernels --quick

echo "== step 3/4: merging profiles =="
"$PROFDATA" merge -o "$ABS_PROFDIR/merged.profdata" "$ABS_PROFDIR"

echo "== step 4/4: optimized rebuild =="
RUSTFLAGS="-Cprofile-use=$ABS_PROFDIR/merged.profdata" \
  cargo build --release -p stpm-bench --bins

echo "PGO build complete: target/release binaries now use $ABS_PROFDIR/merged.profdata"
echo "re-run the full experiments (e.g. target/release/kernels) to measure the effect"
