#!/usr/bin/env bash
# Kernel-parity matrix: the core/property test suites and a quick kernel
# run, executed once per dispatch leg, with every output-derived field
# asserted identical across legs.
#
#   leg 1  detected-best dispatch (whatever the host CPU supports)
#   leg 2  STPM_FORCE_SCALAR=1 (scalar twins only)
#   leg 3  -Ctarget-feature=+avx2 codegen, when the host supports AVX2
#          (best-effort: recompiles the workspace with vector codegen
#          enabled everywhere, not just inside the simd module)
#
# CI's kernel-parity job executes this exact script, so a local
# `scripts/ci_kernel_parity.sh` reproduces the CI gate bit for bit.
set -euo pipefail
cd "$(dirname "$0")/.."

# Test suites run in the dev profile (like CI's test job: the
# strict-invariants call sites assert they are active under
# debug_assertions); only the bench binary needs release codegen.
echo "== leg 1: detected dispatch =="
cargo test -q -p stpm-core --lib
cargo test -q -p freqstpfts --test property_based
cargo run --release -p stpm-bench --bin kernels -- --quick
python3 -m json.tool BENCH_kernels_quick.json > /dev/null
mv BENCH_kernels_quick.json target/BENCH_kernels_quick_detected.json

echo "== leg 2: forced-scalar dispatch =="
STPM_FORCE_SCALAR=1 cargo test -q -p stpm-core --lib
STPM_FORCE_SCALAR=1 cargo test -q -p freqstpfts --test property_based
STPM_FORCE_SCALAR=1 cargo run --release -p stpm-bench --bin kernels -- --quick
python3 -m json.tool BENCH_kernels_quick.json > /dev/null
mv BENCH_kernels_quick.json target/BENCH_kernels_quick_scalar.json

echo "== parity: detected vs forced-scalar =="
python3 scripts/check_kernels_parity.py \
  target/BENCH_kernels_quick_detected.json \
  target/BENCH_kernels_quick_scalar.json

if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
  echo "== leg 3: +avx2 codegen =="
  RUSTFLAGS="-Ctarget-feature=+avx2" cargo test -q -p stpm-core --lib
  RUSTFLAGS="-Ctarget-feature=+avx2" \
    cargo run --release -p stpm-bench --bin kernels -- --quick
  python3 -m json.tool BENCH_kernels_quick.json > /dev/null
  mv BENCH_kernels_quick.json target/BENCH_kernels_quick_avx2.json
  echo "== parity: detected vs +avx2 codegen =="
  python3 scripts/check_kernels_parity.py \
    target/BENCH_kernels_quick_detected.json \
    target/BENCH_kernels_quick_avx2.json
else
  echo "host has no AVX2 — skipping the +avx2 codegen leg"
fi

echo "== wire format untouched by the matrix =="
git diff --exit-code snapshot_format.lock

echo "kernel parity matrix: all legs agree"
