#!/usr/bin/env bash
# Static-analysis gate: the project lint pass (stpm-lint), its fixture
# suite, the wire-format lock freshness check, and the strict-invariants
# test run.
#
# CI's analysis job executes this exact script, so a local
# `scripts/ci_static_analysis.sh` reproduces the CI gate bit for bit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== project lint pass (stpm-lint) =="
cargo run --release -p stpm-lint

echo "== lint fixture suite =="
cargo test --release -q -p stpm-lint

echo "== wire-format lock is committed and fresh =="
test -f snapshot_format.lock
cp snapshot_format.lock /tmp/snapshot_format.lock.committed
cargo run --release -q -p stpm-lint -- --write-format-lock
if ! diff -u /tmp/snapshot_format.lock.committed snapshot_format.lock; then
  echo "snapshot_format.lock is stale — commit the regenerated lock" >&2
  exit 1
fi

echo "== strict-invariants test run (validators on in release) =="
cargo test --release -q --features strict-invariants

echo "== miri (curated subset) =="
# Miri needs a nightly component; run it when available (CI's miri job
# installs it), skip gracefully where it is not (e.g. stable-only local
# toolchains) so the rest of the gate still applies everywhere.
if cargo miri --version > /dev/null 2>&1; then
  MIRIFLAGS="-Zmiri-disable-isolation" cargo miri test -p stpm-core --lib
else
  echo "cargo miri unavailable — skipping (CI runs it in the dedicated job)"
fi

echo "static analysis: all gates passed"
