#!/usr/bin/env python3
"""Compare a fresh `kernels --quick` run against the committed quick baseline.

Usage:
    check_kernels_regression.py BASELINE.json FRESH.json [--max-slowdown 1.25]

Checks, in order of severity:

1. **Parity fields** must be identical: the kernel set, per-kernel element
   counts, match counts, output checksums, and the end-to-end pattern count.
   The workloads are deterministic and machine-independent, so any
   difference is a correctness regression in a kernel, not noise.
2. **Dispatch health**: for every kernel, the detected-best tier must not be
   slower than scalar beyond the noise floor (`--min-dispatch-ratio`,
   default 0.80 on best-of-samples times). The dispatch table routes
   kernels with no profitable vector form to their scalar twins, so a
   genuine sub-1.0 ratio means a losing vector path got wired into the hot
   loop. Be honest about the floor: quick-scale calls run in microseconds,
   where scheduler jitter alone produces double-digit swings, so the floor
   is 0.80 rather than 1.0 and only real pessimizations trip it.
3. **Vector win**: when the host detected AVX2 (and the run was not forced
   scalar), at least one kernel's best tier must beat scalar by
   `--min-best-speedup` (default 1.25 at quick scale; the committed
   full-scale baseline shows >1.5x). A pass of this check proves the SIMD
   dispatch is actually engaged, not silently falling back.
4. **Runtime**: the fresh sum of median per-call times must not exceed
   `max(baseline_total * max_slowdown, baseline_total + ABS_SLACK_SECS)`.
   As with the scaling gate, the noise floor dominates at quick scale and
   only multi-x blowups trip this; checks 1-3 are the strict signals.

Exit status is non-zero on the first failed check.
"""

import argparse
import json
import sys

# Noise floor added on top of the relative runtime budget: quick kernel
# calls run in microseconds, where scheduler jitter alone exceeds 25%.
ABS_SLACK_SECS = 0.02


def load(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    return doc, {point["kernel"]: point for point in doc["kernels"]}


def tier_timing(point, name):
    for tier in point["tiers"]:
        if tier["tier"] == name:
            return tier
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--max-slowdown", type=float, default=1.25)
    parser.add_argument("--min-dispatch-ratio", type=float, default=0.80)
    parser.add_argument("--min-best-speedup", type=float, default=1.25)
    args = parser.parse_args()

    base_doc, base_points = load(args.baseline)
    fresh_doc, fresh_points = load(args.fresh)

    if base_doc["quick"] != fresh_doc["quick"]:
        sys.exit(
            "FAIL: scale mismatch (baseline quick={}, fresh quick={}) — "
            "quick runs are only comparable to quick baselines".format(
                base_doc["quick"], fresh_doc["quick"]
            )
        )

    if set(base_points) != set(fresh_points):
        sys.exit(
            f"FAIL: kernel sets differ (baseline {sorted(base_points)}, "
            f"fresh {sorted(fresh_points)})"
        )

    for name, base_point in sorted(base_points.items()):
        fresh_point = fresh_points[name]
        for field in ("elements", "matches", "checksum"):
            if base_point[field] != fresh_point[field]:
                sys.exit(
                    f"FAIL: {name}.{field} diverged: baseline "
                    f"{base_point[field]} vs fresh {fresh_point[field]} — "
                    "a kernel's output changed"
                )

    if base_doc["patterns"] != fresh_doc["patterns"]:
        sys.exit(
            f"FAIL: end-to-end pattern count diverged: baseline "
            f"{base_doc['patterns']} vs fresh {fresh_doc['patterns']}"
        )

    detected = fresh_doc["detected"]
    forced = fresh_doc.get("force_scalar", False)
    if not forced:
        for name, point in sorted(fresh_points.items()):
            scalar = tier_timing(point, "scalar")
            best_supported = tier_timing(point, detected)
            if scalar is None or best_supported is None:
                sys.exit(f"FAIL: {name} is missing the scalar or {detected} tier")
            # Best-of-samples is the noise-robust statistic at this scale.
            ratio = scalar["min_ns"] / max(best_supported["min_ns"], 1e-9)
            verdict = "ok" if ratio >= args.min_dispatch_ratio else "FAIL"
            print(f"dispatch {name}: {detected} vs scalar {ratio:.2f}x -> {verdict}")
            if ratio < args.min_dispatch_ratio:
                sys.exit(
                    f"FAIL: {name} dispatches to {detected} but runs "
                    f"{ratio:.2f}x of scalar (floor {args.min_dispatch_ratio}) — "
                    "route the kernel's scalar twin in this tier instead"
                )

    if detected == "avx2" and not forced:
        best = 0.0
        best_kernel = "-"
        for name, point in fresh_points.items():
            scalar = tier_timing(point, "scalar")
            for tier in point["tiers"]:
                speedup = scalar["min_ns"] / max(tier["min_ns"], 1e-9)
                if speedup > best:
                    best, best_kernel = speedup, name
        verdict = "ok" if best >= args.min_best_speedup else "FAIL"
        print(f"best vector speedup: {best:.2f}x ({best_kernel}) -> {verdict}")
        if best < args.min_best_speedup:
            sys.exit(
                f"FAIL: no kernel beats scalar by {args.min_best_speedup}x "
                "on an AVX2 host — the SIMD paths are not engaged"
            )

    def total_secs(points):
        return sum(
            tier["median_ns"] for point in points.values() for tier in point["tiers"]
        ) / 1e9

    base_total = total_secs(base_points)
    fresh_total = total_secs(fresh_points)
    budget = max(base_total * args.max_slowdown, base_total + ABS_SLACK_SECS)
    verdict = "ok" if fresh_total <= budget else "FAIL"
    print(
        f"runtime total: baseline {base_total:.4f}s, fresh {fresh_total:.4f}s, "
        f"budget {budget:.4f}s -> {verdict}"
    )
    if fresh_total > budget:
        sys.exit(
            f"FAIL: quick kernel runtime regressed beyond "
            f"{args.max_slowdown:.2f}x (+{ABS_SLACK_SECS}s slack)"
        )
    print(f"ok: {len(fresh_points)} kernels, outputs identical, dispatch healthy")


if __name__ == "__main__":
    main()
