//! Quickstart: mine seasonal temporal patterns from a handful of raw series
//! with the `Pipeline` builder.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The example rebuilds the paper's running example (Table II: five
//! appliances sampled every 5 minutes), maps it to 15-minute granules, and
//! prints every frequent seasonal temporal pattern found by the exact
//! engine.

use freqstpfts::prelude::*;

fn main() {
    // Raw energy readings (kW) of five appliances, one value per 5 minutes.
    // A reading above 0.1 kW means the appliance is ON.
    let bits_to_values = |bits: &str| -> Vec<f64> {
        bits.chars()
            .map(|c| if c == '1' { 1.2 } else { 0.0 })
            .collect()
    };
    let series = vec![
        TimeSeries::new(
            "Cooker",
            bits_to_values("110100110000000000111111000000100110000110"),
        ),
        TimeSeries::new(
            "DishWasher",
            bits_to_values("100100110110000000111111000000100100110110"),
        ),
        TimeSeries::new(
            "FoodProcessor",
            bits_to_values("001011001001111000000000111111001001001001"),
        ),
        TimeSeries::new(
            "Microwave",
            bits_to_values("111100111110111111000111111111111000111000"),
        ),
        TimeSeries::new(
            "Nespresso",
            bits_to_values("110111111110111111000000111111111111111000"),
        ),
    ];

    // Seasonality thresholds: occurrences at most 2 granules apart belong to
    // the same season, a season needs at least 2 occurrences, consecutive
    // seasons must be 3..10 granules apart, and a pattern must have at least
    // 2 seasons to be reported.
    let config = StpmConfig {
        max_period: Threshold::Absolute(2),
        min_density: Threshold::Absolute(2),
        dist_interval: (3, 10),
        min_season: 2,
        max_pattern_len: 3,
        ..StpmConfig::default()
    };

    let outcome = Pipeline::builder()
        .symbolizer(ThresholdSymbolizer::binary(0.1, "Off", "On"))
        .mapping_factor(3) // three 5-minute samples per 15-minute granule
        .engine(Engine::Exact)
        .thresholds(config)
        .run(&series)
        .expect("the example data is valid");

    println!(
        "D_SEQ has {} granules built from {} series (engine: {})",
        outcome.dseq.num_granules(),
        outcome.dseq.num_series(),
        outcome.report.engine()
    );
    println!(
        "Frequent seasonal single events: {}",
        outcome.report.events().len()
    );
    for event in outcome.report.events() {
        println!(
            "  {:<22} support={:<3} seasons={}",
            outcome.report.registry().display(event.label),
            event.support.len(),
            event.seasons.count()
        );
    }
    println!(
        "Frequent seasonal temporal patterns: {}",
        outcome.report.patterns().len()
    );
    for pattern in outcome.report.patterns() {
        println!("  {}", pattern.display(outcome.report.registry()));
    }
}
