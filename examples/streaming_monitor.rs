//! Streaming mining: absorb appliance readings as they arrive and keep the
//! frequent seasonal patterns continuously up to date — no re-mining of
//! history.
//!
//! Run with: `cargo run --example streaming_monitor`
//!
//! The example replays the paper's running example (Table II) as a live
//! feed: readings arrive one day (one 15-minute granule = 3 samples) at a
//! time, each append is absorbed in time proportional to the new data, and
//! every checkpoint report is exactly what a batch re-mine of everything
//! received so far would produce.

use freqstpfts::prelude::*;

fn main() {
    let bits_to_values = |bits: &str| -> Vec<f64> {
        bits.chars()
            .map(|c| if c == '1' { 1.2 } else { 0.0 })
            .collect()
    };
    let feed: Vec<(&str, Vec<f64>)> = vec![
        (
            "Cooker",
            bits_to_values("110100110000000000111111000000100110000110"),
        ),
        (
            "DishWasher",
            bits_to_values("100100110110000000111111000000100100110110"),
        ),
        (
            "FoodProcessor",
            bits_to_values("001011001001111000000000111111001001001001"),
        ),
        (
            "Microwave",
            bits_to_values("111100111110111111000111111111111000111000"),
        ),
        (
            "Nespresso",
            bits_to_values("110111111110111111000000111111111111111000"),
        ),
    ];

    let config = StpmConfig {
        max_period: Threshold::Absolute(2),
        min_density: Threshold::Absolute(2),
        dist_interval: (3, 10),
        min_season: 2,
        max_pattern_len: 3,
        ..StpmConfig::default()
    };

    // The streaming pipeline reuses the batch builder verbatim.
    let mut stream = Pipeline::builder()
        .symbolizer(ThresholdSymbolizer::binary(0.1, "Off", "On"))
        .mapping_factor(3)
        .thresholds(config)
        .into_streaming();

    // Samples arrive in six-sample chunks (two granules per append).
    let total = feed[0].1.len();
    let chunk = 6;
    let mut from = 0;
    while from < total {
        let to = (from + chunk).min(total);
        let batch: Vec<TimeSeries> = feed
            .iter()
            .map(|(name, values)| TimeSeries::new(*name, values[from..to].to_vec()))
            .collect();
        let report = stream.append(&batch).expect("the feed is well-formed");
        println!(
            "absorbed samples {from:>2}..{to:<2} — {} granules, {} frequent seasonal patterns",
            stream.num_granules(),
            report.total_patterns(),
        );
        from = to;
    }

    let report = stream.checkpoint().expect("granules were absorbed");
    println!("\nFrequent seasonal temporal patterns after the full feed:");
    for pattern in report.patterns() {
        println!("  {}", pattern.display(report.registry()));
    }
}
