//! Renewable-energy scenario: find which generation/consumption/weather
//! events rise and fall together every "winter" in the RE surrogate dataset
//! (the workload behind patterns P1–P3 of the paper's Table VIII).
//!
//! Run with: `cargo run --release --example energy_seasonality`

use freqstpfts::prelude::*;

fn main() {
    // Synthesize a laptop-sized slice of the RE workload: 12 series covering
    // two simulated years of daily granules.
    let spec = DatasetSpec::real(DatasetProfile::RenewableEnergy)
        .scaled_to(12, 730)
        .with_seed(2023);
    let data = generate(&spec);

    let (dist_min, dist_max) = DatasetProfile::RenewableEnergy.dist_interval();
    let config = StpmConfig {
        max_period: Threshold::Fraction(0.006),
        min_density: Threshold::Fraction(0.0075),
        dist_interval: (dist_min, dist_max),
        min_season: 4,
        max_pattern_len: 3,
        ..StpmConfig::default()
    };

    let outcome = Pipeline::builder()
        .mapping_factor(data.mapping_factor)
        .engine(Engine::Exact)
        .thresholds(config.clone())
        .run_symbolic(&data.dsyb)
        .expect("generated data is valid");
    let report = &outcome.report;

    println!(
        "Mined {} granules x {} series: {} seasonal events, {} seasonal patterns",
        outcome.dseq.num_granules(),
        outcome.dseq.num_series(),
        report.events().len(),
        report.patterns().len()
    );

    // Rank patterns the way the paper's qualitative table does: most seasons
    // first, longer patterns preferred.
    let mut ranked: Vec<_> = report.patterns().iter().collect();
    ranked.sort_by_key(|p| {
        (
            std::cmp::Reverse(p.seasons().count()),
            std::cmp::Reverse(p.pattern().len()),
        )
    });
    println!("\nTop seasonal energy patterns (Table VIII style):");
    for pattern in ranked.iter().take(10) {
        let seasons = pattern.seasons();
        let first_season = seasons
            .first_season()
            .map(|s| format!("H{}..H{}", s.first().unwrap(), s.last().unwrap()))
            .unwrap_or_default();
        println!(
            "  {:<60} seasons={:<2} first-season={}",
            pattern.pattern().display(report.registry()),
            seasons.count(),
            first_season
        );
    }

    // The pruning ablation of Figures 15/16 in one line: how much faster is
    // the fully-pruned miner than the naive one on this workload?
    for mode in PruningMode::all_modes() {
        let pipeline = Pipeline::builder()
            .mapping_factor(data.mapping_factor)
            .thresholds(config.clone().with_pruning(mode));
        let start = std::time::Instant::now();
        let run = pipeline
            .run_symbolic(&data.dsyb)
            .expect("valid configuration");
        println!(
            "  pruning={:<8} runtime={:>8.2?} patterns={}",
            mode.label(),
            start.elapsed(),
            run.report.total_patterns()
        );
    }
}
