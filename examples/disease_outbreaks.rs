//! Health scenario: detect seasonal disease outbreaks and the weather events
//! that precede them — the influenza / hand-foot-mouth use case motivating
//! the paper (Figure 1 and patterns P4–P7 of Table VIII).
//!
//! The example builds weather and case-count series explicitly with
//! per-series symbolizers (rather than through the dataset generator), so it
//! doubles as a template for plugging your own epidemiological data into the
//! library: symbolize yourself, then enter the `Pipeline` through
//! `run_symbolic`.
//!
//! Run with: `cargo run --release --example disease_outbreaks`

use freqstpfts::prelude::*;

/// Builds three years of weekly observations: cold+humid winters are
/// followed, with a short lag, by influenza outbreaks.
fn build_series() -> Vec<TimeSeries> {
    let weeks = 52 * 3;
    let mut temperature = Vec::with_capacity(weeks);
    let mut humidity = Vec::with_capacity(weeks);
    let mut influenza = Vec::with_capacity(weeks);
    for week in 0..weeks {
        let season_pos = week % 52;
        // Winter spans the first 10 weeks of each simulated year.
        let winter = season_pos < 10;
        let late_winter = (2..12).contains(&season_pos);
        // Simple deterministic pseudo-noise so the example stays reproducible.
        let wobble = ((week * 37) % 10) as f64 / 10.0;
        temperature.push(if winter {
            1.0 + wobble
        } else {
            12.0 + 2.0 * wobble
        });
        humidity.push(if winter {
            82.0 + wobble
        } else {
            55.0 + 3.0 * wobble
        });
        influenza.push(if late_winter {
            240.0 + 20.0 * wobble
        } else {
            15.0 + 5.0 * wobble
        });
    }
    vec![
        TimeSeries::new("Temperature", temperature),
        TimeSeries::new("Humidity", humidity),
        TimeSeries::new("InfluenzaCases", influenza),
    ]
}

fn main() {
    let series = build_series();

    // Each series gets a domain-specific symbolizer: Low/High temperature and
    // humidity, Low/High case counts.
    let temperature_sym = ThresholdSymbolizer::binary(8.0, "Low", "High");
    let humidity_sym = ThresholdSymbolizer::binary(70.0, "Low", "High");
    let cases_sym = ThresholdSymbolizer::binary(100.0, "Low", "High");
    let symbolizers: Vec<&dyn Symbolizer> = vec![&temperature_sym, &humidity_sym, &cases_sym];

    let dsyb =
        SymbolicDatabase::from_series_with(&series, &symbolizers).expect("aligned weekly series");

    let config = StpmConfig {
        max_period: Threshold::Absolute(3),
        min_density: Threshold::Absolute(4),
        dist_interval: (20, 52),
        min_season: 2,
        max_pattern_len: 3,
        ..StpmConfig::default()
    };
    // Weekly data is already at the granularity we mine at: m = 1.
    let outcome = Pipeline::builder()
        .mapping_factor(1)
        .engine(Engine::Exact)
        .thresholds(config)
        .run_symbolic(&dsyb)
        .expect("valid configuration");
    let report = &outcome.report;

    println!(
        "Seasonal disease patterns over {} weeks:",
        outcome.dseq.num_granules()
    );
    for pattern in report.patterns() {
        let involves_outbreak = pattern
            .pattern()
            .events()
            .iter()
            .any(|e| report.registry().display(*e) == "InfluenzaCases:High");
        if involves_outbreak {
            println!(
                "  {:<75} seasons={}",
                pattern.pattern().display(report.registry()),
                pattern.seasons().count()
            );
        }
    }

    // The headline insight of Figure 1: low temperature + high humidity are
    // seasonally followed by an influenza outbreak.
    let cold = report.registry().label("Temperature", "Low").unwrap();
    let humid = report.registry().label("Humidity", "High").unwrap();
    let outbreak = report.registry().label("InfluenzaCases", "High").unwrap();
    let winter_pattern_found = report.patterns().iter().any(|p| {
        let events = p.pattern().events();
        events.contains(&cold) && events.contains(&humid) && events.contains(&outbreak)
    });
    println!("\n`Low Temperature / High Humidity -> High Influenza` found: {winter_pattern_found}");
}
