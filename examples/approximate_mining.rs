//! A-STPM in practice: prune uncorrelated series with mutual information
//! before mining, and quantify the speed/accuracy trade-off against the
//! exact miner (the workflow behind Tables VII/XI/XII of the paper).
//!
//! Both engines run through the same `Pipeline`; only the `.engine(...)`
//! selection differs, and both return the unified `EngineReport`.
//!
//! Run with: `cargo run --release --example approximate_mining`

use freqstpfts::prelude::*;
use std::time::Instant;

fn main() {
    // A health-style workload where only ~60% of the series carry seasonal
    // signal; the rest is sensor noise A-STPM should discard.
    let spec = DatasetSpec::real(DatasetProfile::Influenza)
        .scaled_to(16, 608)
        .with_correlated_fraction(0.6)
        .with_seed(99);
    let data = generate(&spec);

    let (dist_min, dist_max) = DatasetProfile::Influenza.dist_interval();
    let config = StpmConfig {
        max_period: Threshold::Fraction(0.008),
        min_density: Threshold::Fraction(0.0075),
        dist_interval: (dist_min, dist_max),
        min_season: 4,
        max_pattern_len: 2,
        ..StpmConfig::default()
    };

    // One pipeline per engine; everything but `.engine(...)` is identical.
    let run_engine = |engine: Engine| {
        let pipeline = Pipeline::builder()
            .mapping_factor(data.mapping_factor)
            .engine(engine)
            .thresholds(config.clone());
        let start = Instant::now();
        let outcome = pipeline
            .run_symbolic(&data.dsyb)
            .expect("generated data is valid");
        (outcome, start.elapsed())
    };

    let (exact, exact_time) = run_engine(Engine::Exact);
    // µ derived from minSeason/minDensity via the Lambert-W bound of
    // Theorem 1 (Corollary 1.1).
    let (approx, approx_time) = run_engine(Engine::Approximate { mu: None });

    let acc = accuracy(&exact.report, &approx.report);
    let pruning = approx.report.pruning();

    println!(
        "Workload: {} series x {} granules",
        exact.dseq.num_series(),
        exact.dseq.num_granules()
    );
    println!(
        "{:<7}: {:>8.2?}  -> {} patterns",
        exact.report.engine(),
        exact_time,
        exact.report.total_patterns()
    );
    println!(
        "{:<7}: {:>8.2?}  -> {} patterns  (MI/µ time {:.2?}, mining time {:.2?})",
        approx.report.engine(),
        approx_time,
        approx.report.total_patterns(),
        approx.report.phase_time("mi"),
        approx.report.phase_time("patterns"),
    );
    println!(
        "Pruned {:.1}% of the time series ({:.1}% of the events); accuracy vs E-STPM: {:.1}%",
        pruning.pruned_series_pct(),
        pruning.pruned_events_pct(),
        acc
    );
    if approx_time < exact_time {
        println!(
            "Speedup: {:.2}x",
            exact_time.as_secs_f64() / approx_time.as_secs_f64().max(1e-9)
        );
    }

    println!("\nSeries kept by the mutual-information filter:");
    for id in &pruning.kept_series {
        println!(
            "  {}",
            data.dsyb.registry().series_name(*id).unwrap_or("<unknown>")
        );
    }
}
