//! A-STPM in practice: prune uncorrelated series with mutual information
//! before mining, and quantify the speed/accuracy trade-off against the
//! exact miner (the workflow behind Tables VII/XI/XII of the paper).
//!
//! Run with: `cargo run --release --example approximate_mining`

use freqstpfts::prelude::*;
use std::time::Instant;

fn main() {
    // A health-style workload where only ~60% of the series carry seasonal
    // signal; the rest is sensor noise A-STPM should discard.
    let spec = DatasetSpec::real(DatasetProfile::Influenza)
        .scaled_to(16, 608)
        .with_correlated_fraction(0.6)
        .with_seed(99);
    let data = generate(&spec);
    let dseq = data.dseq().expect("generated data is valid");

    let (dist_min, dist_max) = DatasetProfile::Influenza.dist_interval();
    let config = StpmConfig {
        max_period: Threshold::Fraction(0.008),
        min_density: Threshold::Fraction(0.0075),
        dist_interval: (dist_min, dist_max),
        min_season: 4,
        max_pattern_len: 2,
        ..StpmConfig::default()
    };

    // Exact miner over all series.
    let start = Instant::now();
    let exact = StpmMiner::new(&dseq, &config)
        .expect("valid configuration")
        .mine();
    let exact_time = start.elapsed();

    // Approximate miner: µ is derived from minSeason/minDensity via the
    // Lambert-W bound of Theorem 1 (Corollary 1.1).
    let start = Instant::now();
    let approx = AStpmMiner::new(&data.dsyb, data.mapping_factor, &AStpmConfig::new(config))
        .expect("valid configuration")
        .mine()
        .expect("valid dataset");
    let approx_time = start.elapsed();

    let acc = accuracy(&exact, dseq.registry(), approx.report(), approx.registry());

    println!("Workload: {} series x {} granules", dseq.num_series(), dseq.num_granules());
    println!(
        "E-STPM : {:>8.2?}  -> {} patterns",
        exact_time,
        exact.total_patterns()
    );
    println!(
        "A-STPM : {:>8.2?}  -> {} patterns  (MI/µ time {:.2?}, mining time {:.2?})",
        approx_time,
        approx.report().total_patterns(),
        approx.mi_time(),
        approx.mining_time()
    );
    println!(
        "Pruned {:.1}% of the time series ({:.1}% of the events); accuracy vs E-STPM: {:.1}%",
        approx.pruned_series_pct(),
        approx.pruned_events_pct(),
        acc
    );
    if approx_time < exact_time {
        println!(
            "Speedup: {:.2}x",
            exact_time.as_secs_f64() / approx_time.as_secs_f64().max(1e-9)
        );
    }

    println!("\nSeries kept by the mutual-information filter:");
    for id in approx.kept_series() {
        println!(
            "  {}",
            data.dsyb
                .registry()
                .series_name(*id)
                .unwrap_or("<unknown>")
        );
    }
}
