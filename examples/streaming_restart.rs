//! Crash recovery: snapshot a streaming miner on shutdown, log every append
//! to a write-ahead log in between, and rehydrate after a restart without
//! re-mining history.
//!
//! Run with: `cargo run --example streaming_restart`
//!
//! The example replays the paper's running example (Table II) as a live
//! feed interrupted by a "crash": the first process snapshots mid-feed and
//! keeps appending (each append is durably logged before the call returns),
//! then dies without a clean shutdown. The second process calls
//! [`StreamingPipeline::recover`], which restores the snapshot and replays
//! the WAL tail — and continues the feed as if nothing had happened.
//!
//! # Crash-recovery runbook
//!
//! What to do (and what to expect) when a streaming monitor dies:
//!
//! 1. **Restart with the same builder.** Thresholds and the mapping factor
//!    must match the snapshot (`recover` verifies them and returns a typed
//!    `SnapshotConfigMismatch` otherwise); the symbolizer is configured by
//!    hand because it is never serialised.
//! 2. **Call `recover(Some(snapshot), wal)` unconditionally.** A missing or
//!    empty snapshot file and a missing WAL are *not* errors — first boot
//!    and post-crash restart share this one startup call. The returned
//!    [`RecoveryReport`] says what happened: `restored_granules` from the
//!    snapshot, `replayed_records` from the WAL, `wal_was_clean = false`
//!    when a torn tail (crash mid-append) was truncated away, and
//!    `io_retries` when transient I/O faults had to be retried.
//! 3. **Trust the acknowledgment contract.** Every `append` that returned
//!    `Ok` before the crash is in the recovered state — appends are fsynced
//!    into the WAL before they return. A batch that was mid-append when the
//!    process died was never acknowledged and simply is not there.
//! 4. **Do not clean up by hand.** Leftover `*.tmp` snapshot siblings are
//!    removed by the snapshot path itself; torn WAL tails are truncated on
//!    attach. If recovery reports a typed corruption error, keep the files
//!    for inspection — nothing will panic or overwrite them.
//! 5. **Under memory pressure, budget instead of restarting.** With
//!    [`StreamingPipeline::set_memory_budget`] the miner spills to a cold
//!    file between appends and rehydrates on demand; checkpoints are
//!    byte-identical to an unbudgeted run, so the budget can be added or
//!    removed at any restart.

use freqstpfts::prelude::*;
use std::path::Path;

fn pipeline() -> StreamingPipeline {
    let config = StpmConfig {
        max_period: Threshold::Absolute(2),
        min_density: Threshold::Absolute(2),
        dist_interval: (3, 10),
        min_season: 2,
        max_pattern_len: 3,
        ..StpmConfig::default()
    };
    // Snapshots carry the symbolic history and the miner state, but not the
    // symbolizer (arbitrary user code): every process configures the same
    // builder, and `restore_from`/`recover` verify the thresholds match.
    Pipeline::builder()
        .symbolizer(ThresholdSymbolizer::binary(0.1, "Off", "On"))
        .mapping_factor(3)
        .thresholds(config)
        .into_streaming()
}

fn feed() -> Vec<(&'static str, Vec<f64>)> {
    let bits_to_values = |bits: &str| -> Vec<f64> {
        bits.chars()
            .map(|c| if c == '1' { 1.2 } else { 0.0 })
            .collect()
    };
    vec![
        (
            "Cooker",
            bits_to_values("110100110000000000111111000000100110000110"),
        ),
        (
            "DishWasher",
            bits_to_values("100100110110000000111111000000100100110110"),
        ),
        (
            "FoodProcessor",
            bits_to_values("001011001001111000000000111111001001001001"),
        ),
        (
            "Microwave",
            bits_to_values("111100111110111111000111111111111000111000"),
        ),
        (
            "Nespresso",
            bits_to_values("110111111110111111000000111111111111111000"),
        ),
    ]
}

fn batch(feed: &[(&str, Vec<f64>)], from: usize, to: usize) -> Vec<TimeSeries> {
    feed.iter()
        .map(|(name, values)| TimeSeries::new(*name, values[from..to].to_vec()))
        .collect()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("stpm_restart_example_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let snap_path = dir.join("monitor.snap");
    let wal_path = dir.join("monitor.wal");

    let readings = feed();
    first_process(&readings, &snap_path, &wal_path);
    second_process(&readings, &snap_path, &wal_path);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The monitor before the crash: snapshot once, keep appending (each append
/// lands in the WAL before the call returns), then die mid-feed.
fn first_process(readings: &[(&str, Vec<f64>)], snap_path: &Path, wal_path: &Path) {
    let mut stream = pipeline();
    stream.attach_wal(wal_path).expect("the WAL is writable");

    // Absorb the first half of the feed, then snapshot — e.g. a graceful
    // shutdown, a periodic checkpoint timer, or an eviction. `snapshot_to`
    // writes a temp file, fsyncs, renames over the target and only then
    // truncates the WAL, so a crash at any instant leaves either the old
    // snapshot + a WAL that covers the difference, or the new snapshot.
    stream
        .append(&batch(readings, 0, 18))
        .expect("the feed is well-formed");
    stream
        .snapshot_to(snap_path)
        .expect("the snapshot is writable");
    println!(
        "[monitor #1] snapshot at {} granules ({} patterns interned)",
        stream.num_granules(),
        stream.checkpoint_meta().patterns_interned,
    );

    // More readings arrive after the snapshot. They are durable the moment
    // `append` returns: the WAL holds them.
    stream
        .append(&batch(readings, 18, 24))
        .expect("the feed is well-formed");
    stream
        .append(&batch(readings, 24, 30))
        .expect("the feed is well-formed");
    println!(
        "[monitor #1] ...crashing with {} granules absorbed but un-snapshotted",
        stream.pending_granules(),
    );
    // The process dies here: no snapshot_to, no clean shutdown.
}

/// The monitor after the restart: recover, verify nothing was lost, and
/// finish the feed.
fn second_process(readings: &[(&str, Vec<f64>)], snap_path: &Path, wal_path: &Path) {
    let mut stream = pipeline();
    // Transient I/O hiccups (EINTR/EAGAIN-class) are retried with bounded,
    // deterministically-jittered backoff; the default policy is already on,
    // this simply makes the choice explicit.
    stream.set_retry_policy(RetryPolicy::default());
    let recovery = stream
        .recover(Some(snap_path), wal_path)
        .expect("the snapshot and WAL are intact");
    println!(
        "[monitor #2] recovered {} granules from the snapshot + {} WAL record(s) \
         -> {} granules ({} transient I/O retr{})",
        recovery.restored_granules,
        recovery.replayed_records,
        stream.num_granules(),
        recovery.io_retries,
        if recovery.io_retries == 1 { "y" } else { "ies" },
    );
    assert_eq!(stream.num_granules(), 10, "the crash lost nothing");

    // This monitor is memory-constrained: between appends the miner state
    // is spilled to a cold file and rehydrated on demand. Checkpoints stay
    // byte-identical to an unbudgeted run, so this changes economics, not
    // results. (A 1-byte budget spills after every append — a real
    // deployment would size this to its container limit.)
    let spill_path = wal_path.with_file_name("monitor.spill");
    stream.set_memory_budget(MemoryBudget::bytes(1), &spill_path);

    // Business as usual: the feed continues where the crash cut it off.
    stream
        .append(&batch(readings, 30, 42))
        .expect("the feed is well-formed");
    let report = stream.checkpoint().expect("granules were absorbed");
    println!("\nFrequent seasonal temporal patterns after the full feed:");
    for pattern in report.patterns() {
        println!("  {}", pattern.display(report.registry()));
    }
}
