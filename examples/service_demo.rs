//! Service-tier walkthrough: boot the multi-tenant daemon in-process,
//! speak the length-prefixed TCP protocol through the bundled client, and
//! watch the robustness machinery work — acknowledged-durable appends,
//! per-tenant isolation, live stats, and a graceful drain that leaves
//! every tenant recoverable without WAL replay.
//!
//! ```sh
//! cargo run --example service_demo
//! ```
//!
//! The same daemon runs standalone as `stpm-serve`:
//!
//! ```sh
//! cargo run -p stpm-service --bin stpm-serve -- --data-dir /tmp/stpm --listen 127.0.0.1:7171
//! ```

use stpm_service::{serve, Client, Response, Service, ServiceConfig};
use stpm_timeseries::{Alphabet, SymbolId, SymbolicDatabase, SymbolicSeries};

/// A two-series symbolic batch of `len` instants; `phase` shifts the
/// symbols so successive batches carry fresh data.
fn batch(len: usize, phase: usize) -> SymbolicDatabase {
    let alphabet = Alphabet::from_strs(&["lo", "hi"]).expect("a valid alphabet");
    let series = ["cpu", "mem"]
        .iter()
        .map(|name| {
            let symbols = (0..len)
                .map(|i| SymbolId(u16::try_from((i + phase) % 2).expect("0 or 1")))
                .collect();
            SymbolicSeries::new((*name).to_string(), symbols, alphabet.clone())
        })
        .collect();
    SymbolicDatabase::new(series).expect("a valid batch")
}

fn main() -> std::io::Result<()> {
    // A throwaway data directory: each tenant gets
    // `<data_dir>/tenants/<name>.{snap,wal}` underneath it.
    let data_dir = std::env::temp_dir().join("stpm-service-demo");
    let _ = std::fs::remove_dir_all(&data_dir);

    let mut config = ServiceConfig::new(&data_dir);
    config.mapping_factor = 1;
    config.workers = 2;
    let service = Service::start(config)?;

    // Port 0: the OS picks a free port; handle.addr() reports it.
    let handle = serve(service, "127.0.0.1:0")?;
    let addr = handle.addr();
    println!("daemon listening on {addr}");

    let mut client = Client::connect(addr)?;

    // Appends are acknowledged only after the batch is WAL-fsynced: an
    // `Appended` response survives any crash that follows it.
    for (tenant, phase) in [("web-shop", 0), ("web-shop", 6), ("telemetry", 1)] {
        match client.append(tenant, 0, batch(6, phase))? {
            Response::Appended {
                granules,
                pending_instants,
                patterns,
            } => println!(
                "{tenant}: {granules} granules durable, \
                 {pending_instants} instants pending, {patterns} patterns"
            ),
            other => println!("{tenant}: unexpected response {other:?}"),
        }
    }

    // Each tenant mines independently; a query touches only its pipeline.
    if let Response::Patterns { patterns } = client.patterns("web-shop")? {
        println!("web-shop patterns: {patterns:?}");
    }

    let stats = client.stats()?;
    println!(
        "fleet: {} tenants, {} acked appends, {} bytes resident",
        stats.tenants.len(),
        stats.acked_appends,
        stats.resident_bytes
    );

    // In-band shutdown: the daemon stops accepting, drains queued work,
    // then snapshot-flushes every tenant so a restart needs no WAL replay.
    client.shutdown()?;
    drop(client);
    let report = handle.run_to_completion();
    println!(
        "drained: {} flushed, {} already durable, {} failures",
        report.flushed,
        report.already_durable,
        report.failures.len()
    );

    let _ = std::fs::remove_dir_all(&data_dir);
    Ok(())
}
