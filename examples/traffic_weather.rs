//! Smart-city scenario: how weather affects traffic, mined with both the
//! exact engine and the APS-growth baseline to compare their outputs and
//! runtimes (patterns P8–P11 of the paper's Table VIII).
//!
//! Because every engine returns the unified `EngineReport`, the comparison
//! loop below is engine-agnostic — add `Engine::Approximate { mu: None }` to
//! the array to bring A-STPM into the comparison.
//!
//! Run with: `cargo run --release --example traffic_weather`

use freqstpfts::prelude::*;
use std::time::Instant;

fn main() {
    // A laptop-sized slice of the SC workload.
    let spec = DatasetSpec::real(DatasetProfile::SmartCity)
        .scaled_to(10, 624)
        .with_seed(7);
    let data = generate(&spec);

    let (dist_min, dist_max) = DatasetProfile::SmartCity.dist_interval();
    let config = StpmConfig {
        max_period: Threshold::Fraction(0.008),
        min_density: Threshold::Fraction(0.0075),
        dist_interval: (dist_min, dist_max),
        min_season: 4,
        max_pattern_len: 2,
        ..StpmConfig::default()
    };

    // Run both contenders through the same pipeline, engine-agnostically.
    let mut outcomes = Vec::new();
    for engine in [Engine::Exact, Engine::ApsGrowth] {
        let pipeline = Pipeline::builder()
            .mapping_factor(data.mapping_factor)
            .engine(engine)
            .thresholds(config.clone());
        let start = Instant::now();
        let outcome = pipeline
            .run_symbolic(&data.dsyb)
            .expect("generated data is valid");
        outcomes.push((outcome, start.elapsed()));
    }

    let (exact, exact_time) = &outcomes[0];
    let (baseline, baseline_time) = &outcomes[1];

    println!(
        "Traffic/weather workload: {} granules, {} series",
        exact.dseq.num_granules(),
        exact.dseq.num_series()
    );
    for (outcome, elapsed) in &outcomes {
        println!(
            "{:<10} : {:>8.2?}  {} seasonal patterns  (~{} KiB of mining tables)",
            outcome.report.engine(),
            elapsed,
            outcome.report.total_patterns(),
            outcome.report.memory_bytes() / 1024
        );
    }
    if baseline_time > exact_time {
        println!(
            "E-STPM is {:.1}x faster than the adapted PS-growth baseline on this workload",
            baseline_time.as_secs_f64() / exact_time.as_secs_f64().max(1e-9)
        );
    }

    // The baseline can only miss patterns (its minSup constraint), never add:
    let missed = exact
        .report
        .patterns()
        .iter()
        .filter(|p| !baseline.report.contains_pattern(p.pattern()))
        .count();
    println!(
        "Patterns found by E-STPM but missed by the baseline: {missed} of {}",
        exact.report.patterns().len()
    );

    println!("\nSample seasonal traffic patterns:");
    for pattern in exact.report.patterns().iter().take(8) {
        println!(
            "  {:<55} seasons={}",
            pattern.pattern().display(exact.report.registry()),
            pattern.seasons().count()
        );
    }
}
