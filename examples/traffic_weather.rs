//! Smart-city scenario: how weather affects traffic, mined with both the
//! exact miner and the APS-growth baseline to compare their outputs and
//! runtimes (patterns P8–P11 of the paper's Table VIII).
//!
//! Run with: `cargo run --release --example traffic_weather`

use freqstpfts::prelude::*;
use std::time::Instant;

fn main() {
    // A laptop-sized slice of the SC workload.
    let spec = DatasetSpec::real(DatasetProfile::SmartCity)
        .scaled_to(10, 624)
        .with_seed(7);
    let data = generate(&spec);
    let dseq = data.dseq().expect("generated data is valid");

    let (dist_min, dist_max) = DatasetProfile::SmartCity.dist_interval();
    let config = StpmConfig {
        max_period: Threshold::Fraction(0.008),
        min_density: Threshold::Fraction(0.0075),
        dist_interval: (dist_min, dist_max),
        min_season: 4,
        max_pattern_len: 2,
        ..StpmConfig::default()
    };

    // Exact miner.
    let start = Instant::now();
    let exact = StpmMiner::new(&dseq, &config)
        .expect("valid configuration")
        .mine();
    let exact_time = start.elapsed();

    // APS-growth baseline on the same data and thresholds.
    let start = Instant::now();
    let baseline = ApsGrowth::new(&dseq, &config)
        .expect("valid configuration")
        .mine();
    let baseline_time = start.elapsed();

    println!("Traffic/weather workload: {} granules, {} series", dseq.num_granules(), dseq.num_series());
    println!(
        "E-STPM     : {:>8.2?}  {} seasonal patterns  (~{} KiB of HLH tables)",
        exact_time,
        exact.total_patterns(),
        exact.stats().peak_footprint_bytes / 1024
    );
    println!(
        "APS-growth : {:>8.2?}  {} seasonal patterns  (~{} KiB of PS-tree/itemset tables)",
        baseline_time,
        baseline.report.total_patterns(),
        baseline.footprint_bytes / 1024
    );
    if baseline_time > exact_time {
        println!(
            "E-STPM is {:.1}x faster than the adapted PS-growth baseline on this workload",
            baseline_time.as_secs_f64() / exact_time.as_secs_f64().max(1e-9)
        );
    }

    // The baseline can only miss patterns (its minSup constraint), never add:
    let missed = exact
        .patterns()
        .iter()
        .filter(|p| !baseline.report.contains_pattern(p.pattern()))
        .count();
    println!(
        "Patterns found by E-STPM but missed by the baseline: {missed} of {}",
        exact.patterns().len()
    );

    println!("\nSample seasonal traffic patterns:");
    for pattern in exact.patterns().iter().take(8) {
        println!(
            "  {:<55} seasons={}",
            pattern.pattern().display(dseq.registry()),
            pattern.seasons().count()
        );
    }
}
